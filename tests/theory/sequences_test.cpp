#include "bbb/theory/sequences.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::theory {
namespace {

TEST(Convolve, KnownSmallCase) {
  // (1 + x) * (1 + x) = 1 + 2x + x^2 over coefficient sequences.
  EXPECT_EQ(convolve({1, 1}, {1, 1}), (std::vector<double>{1, 2, 1}));
  EXPECT_EQ(convolve({2}, {3, 4}), (std::vector<double>{6, 8}));
}

TEST(Convolve, Validation) {
  EXPECT_THROW((void)convolve({}, {1.0}), std::invalid_argument);
}

TEST(Convolve, PoissonAdditivity) {
  // Poi(a) * Poi(b) = Poi(a+b): the fact the proof of Lemma 3.2 closes with.
  const auto pa = poisson_pmf_vector(0.5, 40);
  const auto pb = poisson_pmf_vector(100.0 / 198.0, 40);
  const auto conv = convolve(pa, pb);
  const auto direct = poisson_pmf_vector(0.5 + 100.0 / 198.0, 40);
  for (std::size_t k = 0; k <= 40; ++k) {
    EXPECT_NEAR(conv[k], direct[k], 1e-10) << "k=" << k;
  }
}

TEST(Majorizes, BasicCases) {
  // Shifting mass upward makes a sequence majorize the original.
  EXPECT_TRUE(majorizes({0.0, 0.5, 0.5}, {0.5, 0.25, 0.25}));
  EXPECT_FALSE(majorizes({0.5, 0.25, 0.25}, {0.0, 0.5, 0.5}));
  // Every sequence majorizes itself.
  EXPECT_TRUE(majorizes({0.2, 0.3, 0.5}, {0.2, 0.3, 0.5}));
}

TEST(Majorizes, HandlesUnequalLengths) {
  EXPECT_TRUE(majorizes({0.0, 0.0, 1.0}, {1.0}));
  EXPECT_FALSE(majorizes({1.0}, {0.0, 0.0, 1.0}));
}

TEST(IsNonincreasing, Cases) {
  EXPECT_TRUE(is_nonincreasing({3.0, 2.0, 2.0, 1.0}));
  EXPECT_FALSE(is_nonincreasing({1.0, 2.0}));
  EXPECT_TRUE(is_nonincreasing({}));
  EXPECT_TRUE(is_nonincreasing({5.0}));
}

TEST(PoissonPmfVector, SumsToNearlyOne) {
  const auto pmf = poisson_pmf_vector(3.0, 40);
  const double total = std::accumulate(pmf.begin(), pmf.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-10);
}

// Lemma A.1 of the paper: if p majorizes q and r is non-increasing then
// sum p_k r_k <= sum q_k r_k. Property-tested over random instances: build
// q, derive p by moving probability mass upward (which makes p majorize q),
// pick a random non-increasing r, and check the dominance inequality.
class LemmaA1PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LemmaA1PropertyTest, DominanceInequalityHolds) {
  rng::Engine gen(GetParam());
  constexpr std::size_t kLen = 12;

  // Random distribution q.
  std::vector<double> q(kLen);
  double total = 0;
  for (auto& v : q) {
    v = rng::next_double_nonzero(gen);
    total += v;
  }
  for (auto& v : q) v /= total;

  // p = q with random upward mass moves.
  std::vector<double> p = q;
  for (int moves = 0; moves < 6; ++moves) {
    const auto i = static_cast<std::size_t>(rng::uniform_below(gen, kLen - 1));
    const auto j = i + 1 + rng::uniform_below(gen, kLen - 1 - i);
    const double amount = p[i] * rng::next_double(gen);
    p[i] -= amount;
    p[j] += amount;
  }
  ASSERT_TRUE(majorizes(p, q));

  // Random non-increasing r via sorted uniforms.
  std::vector<double> r(kLen);
  for (auto& v : r) v = rng::next_double(gen);
  std::sort(r.begin(), r.end(), std::greater<>());
  ASSERT_TRUE(is_nonincreasing(r));

  EXPECT_LE(dot(p, r), dot(q, r) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LemmaA1PropertyTest,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace bbb::theory
