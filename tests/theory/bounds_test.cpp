#include "bbb/theory/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bbb/theory/phi_d.hpp"

namespace bbb::theory {
namespace {

TEST(Harmonic, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
  EXPECT_NEAR(harmonic(10), 2.9289682539682538, 1e-12);
  EXPECT_NEAR(harmonic(100), 5.187377517639621, 1e-10);
}

TEST(Harmonic, AsymptoticContinuity) {
  // The exact/asymptotic switchover at 10^7 must be seamless.
  const double below = harmonic(10'000'000ULL);
  const double above = harmonic(10'000'001ULL);
  EXPECT_NEAR(above - below, 1e-7, 1e-9);
}

TEST(CouponCollector, MatchesNHn) {
  EXPECT_NEAR(coupon_collector_time(100), 100.0 * harmonic(100), 1e-9);
  EXPECT_GT(coupon_collector_time(1000), 1000.0 * std::log(1000.0));
}

TEST(OneChoiceBound, RegimesAndValidation) {
  // m = n regime: log n / log log n.
  const double light = one_choice_max_load(1024, 1024);
  EXPECT_NEAR(light, std::log(1024.0) / std::log(std::log(1024.0)), 1e-12);
  // Heavy regime grows like m/n + sqrt(2 (m/n) ln n).
  const double heavy = one_choice_max_load(1024 * 100, 1024);
  EXPECT_GT(heavy, 100.0);
  EXPECT_THROW((void)one_choice_max_load(10, 1), std::invalid_argument);
}

TEST(GreedyBound, DecreasesInD) {
  const double d2 = greedy_d_max_load(1 << 16, 1 << 16, 2);
  const double d4 = greedy_d_max_load(1 << 16, 1 << 16, 4);
  EXPECT_GT(d2, d4);
  EXPECT_THROW((void)greedy_d_max_load(10, 10, 1), std::invalid_argument);
}

TEST(LeftBound, BeatsGreedyAtSameD) {
  // ln ln n / (d ln phi_d) < ln ln n / ln d for d >= 2.
  for (std::uint32_t d : {2u, 3u, 4u, 8u}) {
    EXPECT_LT(left_d_max_load(1 << 16, 1 << 16, d),
              greedy_d_max_load(1 << 16, 1 << 16, d))
        << "d=" << d;
  }
}

TEST(PaperBound, CeilPlusOne) {
  EXPECT_EQ(paper_max_load_bound(100, 10), 11u);
  EXPECT_EQ(paper_max_load_bound(101, 10), 12u);
  EXPECT_EQ(paper_max_load_bound(0, 10), 1u);
  EXPECT_THROW((void)paper_max_load_bound(5, 0), std::invalid_argument);
}

TEST(ThresholdBound, Form) {
  EXPECT_DOUBLE_EQ(threshold_overhead_scale(16, 16),
                   std::pow(16.0, 0.75) * std::pow(16.0, 0.25));
  EXPECT_DOUBLE_EQ(threshold_time_bound(1000, 10, 0.0), 1000.0);
  EXPECT_GT(threshold_time_bound(1000, 10, 1.0), 1000.0);
}

TEST(LogStar, KnownValues) {
  EXPECT_EQ(log_star(0.5), 0u);
  EXPECT_EQ(log_star(1.0), 0u);
  EXPECT_EQ(log_star(2.0), 1u);           // ln 2 ~ 0.69
  EXPECT_EQ(log_star(std::exp(1.0)), 1u); // ln e = 1 -> stop
  EXPECT_EQ(log_star(15.0), 2u);          // ln 15 ~ 2.7, ln 2.7 ~ 0.99
  EXPECT_EQ(log_star(1e6), 3u);           // 13.8 -> 2.6 -> 0.97
}

TEST(PhiD, GoldenRatioAtTwo) {
  EXPECT_NEAR(phi_d(2), (1.0 + std::sqrt(5.0)) / 2.0, 1e-12);
}

TEST(PhiD, MonotoneTowardTwo) {
  double prev = phi_d(2);
  for (std::uint32_t d = 3; d <= 20; ++d) {
    const double cur = phi_d(d);
    EXPECT_GT(cur, prev);
    EXPECT_LT(cur, 2.0);
    prev = cur;
  }
  // The paper's Table 1 note: 1.61 <= phi_d < 2.
  EXPECT_GT(phi_d(2), 1.61);
  EXPECT_NEAR(phi_d(20), 2.0, 1e-4);
}

TEST(PhiD, SatisfiesCharacteristicEquation) {
  for (std::uint32_t d : {2u, 3u, 5u, 10u}) {
    const double phi = phi_d(d);
    double rhs = 0.0;
    for (std::uint32_t k = 0; k < d; ++k) rhs += std::pow(phi, k);
    EXPECT_NEAR(std::pow(phi, d), rhs, 1e-9) << "d=" << d;
  }
}

TEST(PhiD, RejectsDegenerate) {
  EXPECT_THROW((void)phi_d(0), std::invalid_argument);
  EXPECT_THROW((void)phi_d(1), std::invalid_argument);
}

TEST(SupermarketFixedPoint, MatchesClosedForms) {
  // d = 1 is the M/M/1 geometric tail; d >= 2 is doubly exponential.
  EXPECT_DOUBLE_EQ(supermarket_tail_fixed_point(0.9, 1, 0), 1.0);
  EXPECT_DOUBLE_EQ(supermarket_tail_fixed_point(0.9, 1, 3), 0.9 * 0.9 * 0.9);
  EXPECT_DOUBLE_EQ(supermarket_tail_fixed_point(0.9, 2, 0), 1.0);
  EXPECT_DOUBLE_EQ(supermarket_tail_fixed_point(0.9, 2, 1), 0.9);
  // (2^3 - 1)/(2 - 1) = 7 and (3^2 - 1)/(3 - 1) = 4.
  EXPECT_NEAR(supermarket_tail_fixed_point(0.9, 2, 3), std::pow(0.9, 7.0), 1e-12);
  EXPECT_NEAR(supermarket_tail_fixed_point(0.5, 3, 2), std::pow(0.5, 4.0), 1e-12);
}

TEST(SupermarketFixedPoint, TailIsMonotoneAndTwoChoicesDominate) {
  double prev1 = 2.0, prev2 = 2.0;
  for (std::uint32_t k = 0; k <= 12; ++k) {
    const double t1 = supermarket_tail_fixed_point(0.9, 1, k);
    const double t2 = supermarket_tail_fixed_point(0.9, 2, k);
    EXPECT_LT(t1, prev1 + 1e-15);
    EXPECT_LT(t2, prev2 + 1e-15);
    EXPECT_LE(t2, t1 + 1e-15) << "k=" << k;
    prev1 = t1;
    prev2 = t2;
  }
  // Large k underflows cleanly to zero rather than misbehaving.
  EXPECT_EQ(supermarket_tail_fixed_point(0.9, 2, 64), 0.0);
}

TEST(SupermarketFixedPoint, RejectsBadParameters) {
  EXPECT_THROW((void)supermarket_tail_fixed_point(0.0, 2, 1), std::invalid_argument);
  EXPECT_THROW((void)supermarket_tail_fixed_point(1.0, 2, 1), std::invalid_argument);
  EXPECT_THROW((void)supermarket_tail_fixed_point(0.9, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace bbb::theory
