#include "bbb/theory/occupancy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bbb/core/metrics.hpp"
#include "bbb/model/poissonized.hpp"
#include "bbb/rng/streams.hpp"

namespace bbb::theory {
namespace {

TEST(Occupancy, Validation) {
  EXPECT_THROW((void)expected_empty_bins(1, 0), std::invalid_argument);
  EXPECT_THROW((void)bin_load_at_least(1, 0, 1), std::invalid_argument);
}

TEST(Occupancy, EmptyBinsKnownValues) {
  // m = 0: all bins empty.
  EXPECT_DOUBLE_EQ(expected_empty_bins(0, 10), 10.0);
  // m = n -> n/e asymptotically.
  EXPECT_NEAR(expected_empty_bins(10'000, 10'000), 10'000.0 / std::exp(1.0), 5.0);
}

TEST(Occupancy, LoadPmfSumsToN) {
  // Sum over k of E[#bins with load k] = n.
  constexpr std::uint64_t m = 50, n = 10;
  double total = 0;
  for (std::uint32_t k = 0; k <= m; ++k) total += expected_bins_with_load(m, n, k);
  EXPECT_NEAR(total, static_cast<double>(n), 1e-9);
}

TEST(Occupancy, BinLoadTailMonotoneInK) {
  double prev = 1.0;
  for (std::uint32_t k = 0; k <= 10; ++k) {
    const double p = bin_load_at_least(100, 10, k);
    EXPECT_LE(p, prev + 1e-15);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(bin_load_at_least(5, 10, 0), 1.0);
  EXPECT_DOUBLE_EQ(bin_load_at_least(5, 10, 6), 0.0);
}

TEST(Occupancy, SingleBinDegenerateCase) {
  EXPECT_DOUBLE_EQ(bin_load_at_least(7, 1, 7), 1.0);
  EXPECT_DOUBLE_EQ(expected_bins_with_load(7, 1, 7), 1.0);
  EXPECT_DOUBLE_EQ(expected_bins_with_load(7, 1, 3), 0.0);
}

TEST(Occupancy, UnionBoundDominatesEmpiricalMaxLoad) {
  // Pr[max >= k] <= n * Pr[Bin(m, 1/n) >= k]; check against simulation.
  constexpr std::uint64_t n = 256;
  rng::Engine gen(3);
  constexpr int kTrials = 2000;
  for (std::uint32_t k : {4u, 5u, 6u}) {
    int hits = 0;
    for (int t = 0; t < kTrials; ++t) {
      if (core::max_load(model::exact_loads(n, n, gen)) >= k) ++hits;
    }
    const double emp = static_cast<double>(hits) / kTrials;
    const double slack = 3.0 * std::sqrt(0.25 / kTrials);
    EXPECT_LE(emp, max_load_union_bound(n, n, k) + slack) << "k=" << k;
  }
}

TEST(Occupancy, EmpiricalEmptyBinsMatchExpectation) {
  constexpr std::uint64_t n = 4096;
  rng::Engine gen(5);
  double total_empty = 0;
  constexpr int kTrials = 50;
  for (int t = 0; t < kTrials; ++t) {
    total_empty += static_cast<double>(core::empty_bins(model::exact_loads(n, n, gen)));
  }
  EXPECT_NEAR(total_empty / kTrials, expected_empty_bins(n, n),
              4.0 * std::sqrt(static_cast<double>(n)));
}

TEST(Occupancy, OverflowMassBounds) {
  EXPECT_DOUBLE_EQ(expected_overflow_mass(0, 10, 2), 0.0);
  const double p = expected_overflow_mass(100, 10, 12);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  // Everything overflows at k = 0... but k=0 counts all balls.
  EXPECT_NEAR(expected_overflow_mass(100, 10, 0), 1.0, 1e-9);
}

}  // namespace
}  // namespace bbb::theory
