#include "bbb/theory/tails.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bbb/rng/distributions.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::theory {
namespace {

TEST(Tails, AllBoundsAreProbabilities) {
  for (double mu : {1.0, 10.0, 100.0}) {
    for (double eps : {0.1, 0.5, 1.0}) {
      const double lo = poisson_lower_tail_bound(mu, eps);
      const double hi = poisson_upper_tail_bound(mu, eps);
      EXPECT_GE(lo, 0.0);
      EXPECT_LE(lo, 1.0);
      EXPECT_GE(hi, 0.0);
      EXPECT_LE(hi, 1.0);
    }
  }
}

TEST(Tails, Validation) {
  EXPECT_THROW((void)poisson_lower_tail_bound(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)poisson_lower_tail_bound(1.0, 1.5), std::invalid_argument);
  EXPECT_THROW((void)poisson_upper_tail_bound(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)hoeffding_bound(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)hoeffding_bound(5, -1.0), std::invalid_argument);
  EXPECT_THROW((void)geometric_sum_tail_bound(0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)binomial_upper_tail_bound(5, 0.0, 0.5), std::invalid_argument);
}

TEST(Tails, BoundsShrinkWithDeviation) {
  EXPECT_GT(poisson_upper_tail_bound(50.0, 0.1), poisson_upper_tail_bound(50.0, 0.5));
  EXPECT_GT(poisson_lower_tail_bound(50.0, 0.1), poisson_lower_tail_bound(50.0, 0.5));
  EXPECT_GT(hoeffding_bound(100, 1.0), hoeffding_bound(100, 10.0));
}

// The bounds must dominate the empirical tails of our own Poisson sampler —
// this is how the paper's proofs consume Theorem A.4, and it cross-checks
// sampler and bound against each other.
class PoissonTailDominanceTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(PoissonTailDominanceTest, UpperBoundDominatesEmpirical) {
  const auto [mu, eps] = GetParam();
  rng::Engine gen(static_cast<std::uint64_t>(mu * 100 + eps * 10));
  rng::PoissonDist dist(mu);
  constexpr int kSamples = 40'000;
  int upper_hits = 0, lower_hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = static_cast<double>(dist(gen));
    if (x >= (1.0 + eps) * mu) ++upper_hits;
    if (x <= (1.0 - eps) * mu) ++lower_hits;
  }
  const double emp_upper = static_cast<double>(upper_hits) / kSamples;
  const double emp_lower = static_cast<double>(lower_hits) / kSamples;
  // Allow 3-sigma sampling slack on the empirical side.
  const double slack = 3.0 * std::sqrt(0.25 / kSamples);
  EXPECT_LE(emp_upper, poisson_upper_tail_bound(mu, eps) + slack);
  EXPECT_LE(emp_lower, poisson_lower_tail_bound(mu, eps) + slack);
}

INSTANTIATE_TEST_SUITE_P(
    MuEpsGrid, PoissonTailDominanceTest,
    ::testing::Values(std::pair{20.0, 0.2}, std::pair{20.0, 0.5},
                      std::pair{100.0, 0.1}, std::pair{100.0, 0.3},
                      std::pair{400.0, 0.1}));

TEST(Tails, GeometricSumBoundDominatesEmpirical) {
  // Sum of n geometrics with p = 0.5, mean 2n; check P[X >= 1.3 * 2n].
  constexpr std::uint64_t n = 200;
  constexpr double eps = 0.3;
  rng::Engine gen(77);
  rng::GeometricDist dist(0.5);
  constexpr int kTrials = 20'000;
  int hits = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) sum += dist(gen);
    if (static_cast<double>(sum) >= (1.0 + eps) * 2.0 * n) ++hits;
  }
  const double emp = static_cast<double>(hits) / kTrials;
  EXPECT_LE(emp, geometric_sum_tail_bound(n, eps) + 0.01);
}

// ------------------------------------------------------- fluid tail curves

TEST(Fluid, Validation) {
  EXPECT_THROW(fluid_tail_curve(-1.0, 1, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(fluid_tail_curve(1.0, 0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(fluid_tail_curve(1.0, 2, -0.1, 4), std::invalid_argument);
  EXPECT_THROW(fluid_tail_curve(1.0, 2, 1.1, 4), std::invalid_argument);
  EXPECT_THROW(fluid_tail_curve(1.0, 1, 0.0, 0), std::invalid_argument);
  EXPECT_THROW((void)fluid_max_load_estimate({}, 4), std::invalid_argument);
  const std::vector<double> tails{0.5};
  EXPECT_THROW((void)fluid_max_load_estimate(tails, 0), std::invalid_argument);
}

TEST(Fluid, TimeZeroIsEmptySystem) {
  const auto s = fluid_tail_curve(0.0, 2, 1.0, 6);
  ASSERT_EQ(s.size(), 6u);
  for (const double v : s) EXPECT_DOUBLE_EQ(v, 0.0);
}

// The analytic pin: at d = 1 the ODE collapses to the Poisson process, so
// s_k(t) = P(Poi(t) >= k) exactly — RK4 must reproduce rng::PoissonDist::sf
// to integrator accuracy. This is the bridge that lets the cross-validation
// suite trust the d >= 2 curves, which have no closed form.
TEST(Fluid, OneChoiceCurveIsPoissonTail) {
  for (const double t : {0.5, 1.0, 2.5}) {
    const rng::PoissonDist poisson(t);
    const auto s = fluid_tail_curve(t, 1, 0.0, 16);
    for (std::uint32_t k = 1; k <= 16; ++k) {
      EXPECT_NEAR(s[k - 1], poisson.sf(k), 1e-8) << "t " << t << " k " << k;
    }
  }
  // beta is irrelevant at d = 1 (both mixture branches are the same probe).
  const auto a = fluid_tail_curve(1.0, 1, 0.0, 8);
  const auto b = fluid_tail_curve(1.0, 1, 1.0, 8);
  for (std::size_t k = 0; k < a.size(); ++k) EXPECT_NEAR(a[k], b[k], 1e-12);
}

TEST(Fluid, CurvesAreMonotoneProbabilities) {
  for (const std::uint32_t d : {1u, 2u, 3u}) {
    const auto s = fluid_tail_curve(2.0, d, 1.0, 20);
    double prev = 1.0;
    for (const double v : s) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, prev + 1e-15);
      prev = v;
    }
  }
}

// Two choices thin the upper tail: greedy[2]'s s_k must sit at or below
// one-choice's from level 2 on (level 1 goes the other way — greedy fills
// empty bins faster), and greedy[3] below greedy[2].
TEST(Fluid, MoreChoicesThinTheTail) {
  const auto one = fluid_tail_curve(1.0, 1, 0.0, 10);
  const auto two = fluid_tail_curve(1.0, 2, 1.0, 10);
  const auto three = fluid_tail_curve(1.0, 3, 1.0, 10);
  for (std::size_t k = 2; k <= 6; ++k) {
    EXPECT_LE(two[k - 1], one[k - 1] + 1e-12) << "k " << k;
    EXPECT_LE(three[k - 1], two[k - 1] + 1e-12) << "k " << k;
  }
  EXPECT_GT(two[0], one[0]);  // s_1: d-choice covers more bins
}

// The (1+beta) mixture interpolates: the fluid max-load estimate at large n
// is monotone from one-choice (beta = 0) down to full greedy (beta = 1).
TEST(Fluid, BetaMixtureInterpolatesMaxLoad) {
  const std::uint64_t n = 1ULL << 40;
  std::uint32_t prev = 0xffffffffu;
  for (const double beta : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto s = fluid_tail_curve(1.0, 2, beta, 64);
    const std::uint32_t est = fluid_max_load_estimate(s, n);
    EXPECT_LE(est, prev) << "beta " << beta;
    prev = est;
  }
}

// Pins for the headline numbers (also asserted end-to-end in
// tests/law/engine_test.cpp through run_law_experiment).
TEST(Fluid, MaxLoadEstimatePins) {
  const std::uint64_t n = 1ULL << 40;
  EXPECT_EQ(fluid_max_load_estimate(fluid_tail_curve(1.0, 1, 0.0, 64), n), 14u);
  EXPECT_EQ(fluid_max_load_estimate(fluid_tail_curve(1.0, 2, 1.0, 64), n), 5u);
  // A curve that never decays below 1/(2n) reports k_max + 1 (saturation).
  const std::vector<double> flat(4, 1.0);
  EXPECT_EQ(fluid_max_load_estimate(flat, 100), 5u);
}

TEST(Tails, HoeffdingDominatesEmpiricalCoinFlips) {
  constexpr std::uint64_t n = 400;
  rng::Engine gen(88);
  constexpr int kTrials = 20'000;
  const double lambda = 30.0;
  int hits = 0;
  for (int t = 0; t < kTrials; ++t) {
    int sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) sum += static_cast<int>(gen() & 1u);
    if (std::abs(sum - 200.0) >= lambda) ++hits;
  }
  const double emp = static_cast<double>(hits) / kTrials;
  EXPECT_LE(emp, hoeffding_bound(n, lambda) + 0.01);
}

}  // namespace
}  // namespace bbb::theory
