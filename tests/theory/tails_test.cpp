#include "bbb/theory/tails.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bbb/rng/distributions.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::theory {
namespace {

TEST(Tails, AllBoundsAreProbabilities) {
  for (double mu : {1.0, 10.0, 100.0}) {
    for (double eps : {0.1, 0.5, 1.0}) {
      const double lo = poisson_lower_tail_bound(mu, eps);
      const double hi = poisson_upper_tail_bound(mu, eps);
      EXPECT_GE(lo, 0.0);
      EXPECT_LE(lo, 1.0);
      EXPECT_GE(hi, 0.0);
      EXPECT_LE(hi, 1.0);
    }
  }
}

TEST(Tails, Validation) {
  EXPECT_THROW((void)poisson_lower_tail_bound(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)poisson_lower_tail_bound(1.0, 1.5), std::invalid_argument);
  EXPECT_THROW((void)poisson_upper_tail_bound(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)hoeffding_bound(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)hoeffding_bound(5, -1.0), std::invalid_argument);
  EXPECT_THROW((void)geometric_sum_tail_bound(0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)binomial_upper_tail_bound(5, 0.0, 0.5), std::invalid_argument);
}

TEST(Tails, BoundsShrinkWithDeviation) {
  EXPECT_GT(poisson_upper_tail_bound(50.0, 0.1), poisson_upper_tail_bound(50.0, 0.5));
  EXPECT_GT(poisson_lower_tail_bound(50.0, 0.1), poisson_lower_tail_bound(50.0, 0.5));
  EXPECT_GT(hoeffding_bound(100, 1.0), hoeffding_bound(100, 10.0));
}

// The bounds must dominate the empirical tails of our own Poisson sampler —
// this is how the paper's proofs consume Theorem A.4, and it cross-checks
// sampler and bound against each other.
class PoissonTailDominanceTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(PoissonTailDominanceTest, UpperBoundDominatesEmpirical) {
  const auto [mu, eps] = GetParam();
  rng::Engine gen(static_cast<std::uint64_t>(mu * 100 + eps * 10));
  rng::PoissonDist dist(mu);
  constexpr int kSamples = 40'000;
  int upper_hits = 0, lower_hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = static_cast<double>(dist(gen));
    if (x >= (1.0 + eps) * mu) ++upper_hits;
    if (x <= (1.0 - eps) * mu) ++lower_hits;
  }
  const double emp_upper = static_cast<double>(upper_hits) / kSamples;
  const double emp_lower = static_cast<double>(lower_hits) / kSamples;
  // Allow 3-sigma sampling slack on the empirical side.
  const double slack = 3.0 * std::sqrt(0.25 / kSamples);
  EXPECT_LE(emp_upper, poisson_upper_tail_bound(mu, eps) + slack);
  EXPECT_LE(emp_lower, poisson_lower_tail_bound(mu, eps) + slack);
}

INSTANTIATE_TEST_SUITE_P(
    MuEpsGrid, PoissonTailDominanceTest,
    ::testing::Values(std::pair{20.0, 0.2}, std::pair{20.0, 0.5},
                      std::pair{100.0, 0.1}, std::pair{100.0, 0.3},
                      std::pair{400.0, 0.1}));

TEST(Tails, GeometricSumBoundDominatesEmpirical) {
  // Sum of n geometrics with p = 0.5, mean 2n; check P[X >= 1.3 * 2n].
  constexpr std::uint64_t n = 200;
  constexpr double eps = 0.3;
  rng::Engine gen(77);
  rng::GeometricDist dist(0.5);
  constexpr int kTrials = 20'000;
  int hits = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) sum += dist(gen);
    if (static_cast<double>(sum) >= (1.0 + eps) * 2.0 * n) ++hits;
  }
  const double emp = static_cast<double>(hits) / kTrials;
  EXPECT_LE(emp, geometric_sum_tail_bound(n, eps) + 0.01);
}

TEST(Tails, HoeffdingDominatesEmpiricalCoinFlips) {
  constexpr std::uint64_t n = 400;
  rng::Engine gen(88);
  constexpr int kTrials = 20'000;
  const double lambda = 30.0;
  int hits = 0;
  for (int t = 0; t < kTrials; ++t) {
    int sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) sum += static_cast<int>(gen() & 1u);
    if (std::abs(sum - 200.0) >= lambda) ++hits;
  }
  const double emp = static_cast<double>(hits) / kTrials;
  EXPECT_LE(emp, hoeffding_bound(n, lambda) + 0.01);
}

}  // namespace
}  // namespace bbb::theory
