/// Boundary tests for the core/protocol.hpp helpers, chiefly ceil_div.
///
/// The textbook formulation (m + n - 1) / n wraps for m within n - 1 of
/// UINT64_MAX: (UINT64_MAX + n - 1) overflows to n - 2 and the quotient
/// collapses to zero. ceil_div is formulated as m / n + (m % n != 0), which
/// is exact over the entire uint64 domain; these tests pin that down.

#include "bbb/core/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace bbb::core {
namespace {

constexpr std::uint64_t kMax64 = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint32_t kMax32 = std::numeric_limits<std::uint32_t>::max();

TEST(CeilDiv, SmallValues) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(4, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
  EXPECT_EQ(ceil_div(10, 1), 10u);
}

// The old (m + n - 1) / n would wrap here: UINT64_MAX + 7 - 1 == 5 (mod
// 2^64), giving ceil_div == 0 instead of the true quotient.
TEST(CeilDiv, NoOverflowNearUint64Max) {
  EXPECT_EQ(ceil_div(kMax64, 1), kMax64);
  EXPECT_EQ(ceil_div(kMax64, 2), (kMax64 / 2) + 1);  // 2^63
  EXPECT_EQ(ceil_div(kMax64, 7), kMax64 / 7 + 1);
  EXPECT_EQ(ceil_div(kMax64 - 2, 7), (kMax64 - 2) / 7 + 1);
  // Exact division at the top of the range: 2^64 - 2^31 = (2^33 - 1) * 2^31.
  const std::uint64_t n31 = std::uint64_t{1} << 31;
  EXPECT_EQ(ceil_div(kMax64 - n31 + 1, std::uint32_t{1} << 31),
            (std::uint64_t{1} << 33) - 1);
}

TEST(CeilDiv, LargestDivisor) {
  // (2^32 - 1)^2 = 2^64 - 2^33 + 1 divides exactly by 2^32 - 1.
  const std::uint64_t square = static_cast<std::uint64_t>(kMax32) * kMax32;
  EXPECT_EQ(ceil_div(square, kMax32), kMax32);
  EXPECT_EQ(ceil_div(square + 1, kMax32), static_cast<std::uint64_t>(kMax32) + 1);
  // (2^64 - 2) / (2^32 - 1) = 2^32 remainder 2^32 - 2, so the ceiling is
  // 2^32 + 1 — representable only because ceil_div returns uint64.
  EXPECT_EQ(ceil_div(kMax64 - 1, kMax32), (std::uint64_t{1} << 32) + 1);
}

TEST(CeilDiv, AgreesWithFloatingPointOnGrid) {
  for (std::uint32_t n : {1u, 2u, 3u, 7u, 64u, 1000u}) {
    for (std::uint64_t m = 0; m <= 3ULL * n + 2; ++m) {
      const auto expected = static_cast<std::uint64_t>(
          std::ceil(static_cast<double>(m) / static_cast<double>(n)));
      EXPECT_EQ(ceil_div(m, n), expected) << "m=" << m << " n=" << n;
    }
  }
}

TEST(ValidateRunArgs, RejectsZeroBins) {
  EXPECT_THROW(validate_run_args(10, 0), std::invalid_argument);
  EXPECT_NO_THROW(validate_run_args(0, 1));
}

}  // namespace
}  // namespace bbb::core
