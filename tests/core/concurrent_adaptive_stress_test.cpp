/// ThreadSanitizer stress suite for the lock-free adaptive allocator
/// (`ctest -L tsan`).
///
/// The existing concurrent_adaptive_test.cpp pins the *guarantee* under
/// concurrency; this suite pins the *memory model*: high-contention
/// interleavings (tiny n, many threads), snapshot reads racing live
/// placers, and allocator lifetime churn — the access patterns TSan
/// needs to observe to certify the CAS loop and the counter protocol.
///
/// TSan audit result (PR 9): CLEAN. Every shared field is a std::atomic
/// (loads_ cells, balls_, probes_); loads_snapshot()/load() during live
/// placement are racy only in the benign documented sense (momentary
/// values), which the acquire loads make well-defined for the memory
/// model — TSan reports nothing.

#include "bbb/core/concurrent_adaptive.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/rng/streams.hpp"

namespace bbb::core {
namespace {

// Maximum contention: 8 threads CAS-fighting over 4 bins. Every
// placement conflicts, so the CAS failure/retry path (the interesting
// one for the race detector) runs constantly.
TEST(ConcurrentAdaptiveTsanStress, TinyBinCountMaximizesCasContention) {
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint32_t n = 4;
  constexpr std::uint64_t kPerThread = 4000;
  ConcurrentAdaptiveAllocator alloc(n);

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  rng::SeedSequence seq(7);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&alloc, engine = seq.engine(t)]() mutable {
      for (std::uint64_t i = 0; i < kPerThread; ++i) (void)alloc.place(engine);
    });
  }
  for (auto& w : workers) w.join();

  constexpr std::uint64_t m = kThreads * kPerThread;
  const auto loads = alloc.loads_snapshot();
  EXPECT_EQ(alloc.balls(), m);
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}), m);
  EXPECT_LE(max_load(loads), ceil_div(m, n) + 1);
  EXPECT_GE(alloc.probes(), m);
}

// Readers race the placers: loads_snapshot(), load(), balls() and
// probes() are all documented as momentary-but-well-defined while
// placement runs. The reader asserts only invariants that hold at any
// instant (per-bin load never exceeds the *final* bound; counters are
// monotone between polls).
TEST(ConcurrentAdaptiveTsanStress, SnapshotReadersRaceLivePlacers) {
  constexpr std::uint32_t kThreads = 6;
  constexpr std::uint32_t n = 64;
  constexpr std::uint64_t kPerThread = 8000;
  constexpr std::uint64_t m = kThreads * kPerThread;
  ConcurrentAdaptiveAllocator alloc(n);

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  rng::SeedSequence seq(11);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&alloc, engine = seq.engine(t)]() mutable {
      for (std::uint64_t i = 0; i < kPerThread; ++i) (void)alloc.place(engine);
    });
  }

  const std::uint64_t final_bound = ceil_div(m, n) + 1;
  std::uint64_t last_balls = 0;
  std::uint64_t last_probes = 0;
  while (alloc.balls() < m) {
    const auto snapshot = alloc.loads_snapshot();
    for (std::uint32_t b = 0; b < n; ++b) {
      EXPECT_LE(snapshot[b], final_bound);
      EXPECT_LE(alloc.load(b), final_bound);
    }
    const std::uint64_t balls_now = alloc.balls();
    const std::uint64_t probes_now = alloc.probes();
    EXPECT_GE(balls_now, last_balls);
    EXPECT_GE(probes_now, last_probes);
    last_balls = balls_now;
    last_probes = probes_now;
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(alloc.balls(), m);
}

// Allocator lifetime churn across thread joins: construction publishes
// the zeroed load array to threads created afterwards; destruction runs
// strictly after every placer joined. Repeated to give TSan many
// birth/death happens-before edges to check.
TEST(ConcurrentAdaptiveTsanStress, AllocatorLifetimeChurn) {
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint32_t n = 16;
  constexpr std::uint64_t kPerThread = 500;
  rng::SeedSequence seq(13);
  for (int round = 0; round < 25; ++round) {
    ConcurrentAdaptiveAllocator alloc(n);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      workers.emplace_back(
          [&alloc, engine = seq.engine(static_cast<std::uint32_t>(round) * kThreads +
                                       t)]() mutable {
            for (std::uint64_t i = 0; i < kPerThread; ++i) (void)alloc.place(engine);
          });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(alloc.balls(), kThreads * kPerThread);
  }
}

}  // namespace
}  // namespace bbb::core
