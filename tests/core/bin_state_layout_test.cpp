/// Wide-vs-compact BinState lockstep: the two storage layouts driven
/// through identical event sequences must agree on every load and every
/// incremental metric at every step — including across the 8-bit lane
/// promotion boundary (load 254 -> 255 -> 256 and back), under weights,
/// and on heterogeneous-capacity states. Plus the layout-specific API
/// contracts (loads()/sample_nonempty rejection, copy_loads) and the
/// pre-existing golden allocation pins rerun on a compact state, proving
/// the layout changes storage only, never a single placement.

#include "bbb/core/bin_state.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/core/protocols/threshold.hpp"
#include "bbb/core/rule.hpp"
#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::core {
namespace {

/// Every metric of the two layouts must be *identical* — not close: the
/// incremental bookkeeping is shared code over integer state, so even the
/// floating-point Psi/lnPhi accumulations follow the same operation
/// sequence bit for bit.
void expect_lockstep(const BinState& wide, const BinState& compact) {
  ASSERT_EQ(wide.n(), compact.n());
  EXPECT_EQ(wide.balls(), compact.balls());
  EXPECT_EQ(wide.max_load(), compact.max_load());
  EXPECT_EQ(wide.min_load(), compact.min_load());
  EXPECT_EQ(wide.gap(), compact.gap());
  EXPECT_EQ(wide.nonempty_bins(), compact.nonempty_bins());
  EXPECT_EQ(wide.psi(), compact.psi());
  EXPECT_EQ(wide.log_phi(), compact.log_phi());
  EXPECT_EQ(wide.weighted_psi(), compact.weighted_psi());
  EXPECT_EQ(wide.max_norm_load(), compact.max_norm_load());
  EXPECT_EQ(wide.min_norm_load(), compact.min_norm_load());
  EXPECT_EQ(wide.level_counts(), compact.level_counts());
  for (std::uint32_t b = 0; b < wide.n(); ++b) {
    ASSERT_EQ(wide.load(b), compact.load(b)) << "bin " << b;
  }
  // copy_loads works in either layout (so the helper also accepts two
  // compact states, e.g. the clear-vs-fresh check).
  EXPECT_EQ(wide.copy_loads(), compact.copy_loads());
}

TEST(BinStateLayout, ReportsLayout) {
  EXPECT_EQ(BinState(4).layout(), StateLayout::kWide);
  EXPECT_EQ(BinState(4, StateLayout::kCompact).layout(), StateLayout::kCompact);
}

TEST(BinStateLayout, ParseAndPrintRoundTrip) {
  EXPECT_EQ(parse_state_layout("wide"), StateLayout::kWide);
  EXPECT_EQ(parse_state_layout("compact"), StateLayout::kCompact);
  EXPECT_EQ(to_string(StateLayout::kWide), "wide");
  EXPECT_EQ(to_string(StateLayout::kCompact), "compact");
  EXPECT_THROW((void)parse_state_layout("narrow"), std::invalid_argument);
  EXPECT_THROW((void)parse_state_layout(""), std::invalid_argument);
}

TEST(BinStateLayout, CompactRejectsWideOnlyApi) {
  BinState compact(8, StateLayout::kCompact);
  compact.add_ball(3);
  EXPECT_THROW((void)compact.loads(), std::logic_error);
  rng::Engine gen(1);
  EXPECT_THROW((void)compact.sample_nonempty(gen), std::logic_error);
  // The portable reads keep working.
  EXPECT_EQ(compact.load(3), 1u);
  EXPECT_EQ(compact.copy_loads(),
            (std::vector<std::uint32_t>{0, 0, 0, 1, 0, 0, 0, 0}));
}

// The promotion boundary: one bin pushed through the 8-bit lane limit
// (255) into the overflow side-table and pulled back down, one unit at a
// time, with a neighbor bin checked for interference.
TEST(BinStateLayout, OverflowPromotionAndDemotionPerUnit) {
  BinState wide(4, StateLayout::kWide);
  BinState compact(4, StateLayout::kCompact);
  for (std::uint32_t i = 0; i < 300; ++i) {
    wide.add_ball(2);
    compact.add_ball(2);
    if (i % 3 == 0) {
      wide.add_ball(0);
      compact.add_ball(0);
    }
    expect_lockstep(wide, compact);
  }
  EXPECT_EQ(compact.load(2), 300u);  // well past the lane limit
  for (std::uint32_t i = 0; i < 300; ++i) {
    wide.remove_ball(2);
    compact.remove_ball(2);
    expect_lockstep(wide, compact);
  }
  EXPECT_EQ(compact.load(2), 0u);
}

// One weighted add that jumps straight across the boundary (254 -> 510)
// and a removal that jumps back (510 -> 2), so promotion/demotion also
// works when no event ever lands exactly on 255/256.
TEST(BinStateLayout, OverflowBoundaryCrossedByWeightedJumps) {
  BinState wide(3, StateLayout::kWide);
  BinState compact(3, StateLayout::kCompact);
  for (auto [bin, w] : {std::pair<std::uint32_t, std::uint32_t>{1, 254},
                        {1, 256}, {0, 1}}) {
    wide.add_ball(bin, w);
    compact.add_ball(bin, w);
    expect_lockstep(wide, compact);
  }
  EXPECT_EQ(compact.load(1), 510u);
  wide.remove_ball(1, 508);
  compact.remove_ball(1, 508);
  expect_lockstep(wide, compact);
  EXPECT_EQ(compact.load(1), 2u);
}

// The issue's named boundary: 255 -> 256 and 256 -> 255 specifically.
TEST(BinStateLayout, BoundaryAt255To256) {
  BinState wide(2, StateLayout::kWide);
  BinState compact(2, StateLayout::kCompact);
  wide.add_ball(0, 255);
  compact.add_ball(0, 255);
  expect_lockstep(wide, compact);
  wide.add_ball(0);
  compact.add_ball(0);
  expect_lockstep(wide, compact);
  EXPECT_EQ(compact.load(0), 256u);
  wide.remove_ball(0);
  compact.remove_ball(0);
  expect_lockstep(wide, compact);
  wide.remove_ball(0, 255);
  compact.remove_ball(0, 255);
  expect_lockstep(wide, compact);
  EXPECT_EQ(compact.load(0), 0u);
}

// Random weighted place+remove interleavings, uniform capacities. Weights
// up to 96 make bins cross the lane limit both ways repeatedly.
TEST(BinStateLayout, RandomWeightedInterleavingLockstep) {
  constexpr std::uint32_t kBins = 23;
  BinState wide(kBins, StateLayout::kWide);
  BinState compact(kBins, StateLayout::kCompact);
  rng::Engine gen(2024);
  for (std::uint32_t step = 0; step < 4000; ++step) {
    const auto bin = static_cast<std::uint32_t>(rng::uniform_below(gen, kBins));
    const auto w = static_cast<std::uint32_t>(1 + rng::uniform_below(gen, 96));
    const bool removable = wide.load(bin) > 0;
    if (removable && rng::uniform_below(gen, 3) == 0) {
      const auto r = static_cast<std::uint32_t>(
          1 + rng::uniform_below(gen, wide.load(bin)));
      wide.remove_ball(bin, r);
      compact.remove_ball(bin, r);
    } else {
      wide.add_ball(bin, w);
      compact.add_ball(bin, w);
    }
    if (step % 7 == 0) expect_lockstep(wide, compact);
  }
  expect_lockstep(wide, compact);
}

// The export property, checked at *every* step: copy_loads() off the
// compact state equals loads() off the wide twin throughout a random
// weighted interleaving whose loads hover around the 8-bit lane limit, so
// the walk crosses the 255 -> 256 promotion boundary (and the demotion
// way back) many times. This is the contract the law tier's consumers of
// exported load vectors rely on: the compact export is the ground truth
// vector, not an approximation of it.
TEST(BinStateLayout, CopyLoadsTracksWideLoadsAcrossPromotions) {
  constexpr std::uint32_t kBins = 11;
  BinState wide(kBins, StateLayout::kWide);
  BinState compact(kBins, StateLayout::kCompact);
  rng::Engine gen(4242);
  int crossings = 0;
  for (std::uint32_t step = 0; step < 6000; ++step) {
    const auto bin = static_cast<std::uint32_t>(rng::uniform_below(gen, kBins));
    const std::uint32_t before = wide.load(bin);
    if (before > 0 && rng::uniform_below(gen, 5) < 2) {
      const auto r = static_cast<std::uint32_t>(1 + rng::uniform_below(gen, before));
      wide.remove_ball(bin, r);
      compact.remove_ball(bin, r);
    } else {
      const auto w = static_cast<std::uint32_t>(1 + rng::uniform_below(gen, 128));
      wide.add_ball(bin, w);
      compact.add_ball(bin, w);
    }
    if ((before <= 255) != (wide.load(bin) <= 255)) ++crossings;
    ASSERT_EQ(compact.copy_loads(), wide.loads()) << "step " << step;
  }
  EXPECT_GT(crossings, 20) << "walk never exercised the promotion boundary";
}

// Same property on a heterogeneous-capacity state: the per-class trackers
// and capacity-normalized metrics run the identical shared code path.
TEST(BinStateLayout, CapacitatedInterleavingLockstep) {
  const std::vector<std::uint32_t> caps{1, 2, 4, 8, 1, 2, 4, 8, 3, 3, 5};
  BinState wide(caps, StateLayout::kWide);
  BinState compact(caps, StateLayout::kCompact);
  const auto n = static_cast<std::uint32_t>(caps.size());
  rng::Engine gen(99);
  for (std::uint32_t step = 0; step < 3000; ++step) {
    const auto bin = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
    if (wide.load(bin) > 0 && rng::uniform_below(gen, 3) == 0) {
      wide.remove_ball(bin);
      compact.remove_ball(bin);
    } else {
      const auto w = static_cast<std::uint32_t>(1 + rng::uniform_below(gen, 64));
      wide.add_ball(bin, w);
      compact.add_ball(bin, w);
    }
    if (step % 11 == 0) expect_lockstep(wide, compact);
  }
  expect_lockstep(wide, compact);
  EXPECT_EQ(wide.total_capacity(), compact.total_capacity());
}

// clear() on a compact state that holds promoted bins must be
// indistinguishable from fresh construction (same contract as wide).
TEST(BinStateLayout, CompactClearEqualsFresh) {
  BinState used(5, StateLayout::kCompact);
  used.add_ball(1, 400);  // promoted
  used.add_ball(3, 7);
  used.clear();
  BinState fresh(5, StateLayout::kCompact);
  expect_lockstep(fresh, used);  // fresh is wide-free; both compact: loads only
  EXPECT_EQ(used.balls(), 0u);
  EXPECT_EQ(used.copy_loads(), fresh.copy_loads());
  used.add_ball(1, 2);  // and it keeps working after the reset
  EXPECT_EQ(used.load(1), 2u);
}

// Identical placements, not just identical metrics: every probing rule
// family streamed into both layouts from the same seed lands every ball
// in the same bin (the rules read loads only through the shared API).
TEST(BinStateLayout, RulesPlaceIdenticallyOnBothLayouts) {
  constexpr std::uint32_t kBins = 64;
  constexpr std::uint64_t kBalls = 512;
  for (const char* spec : {"one-choice", "greedy[2]", "left[2]", "memory[1,1]",
                           "threshold", "adaptive", "adaptive-net", "cuckoo[2,4]"}) {
    StreamingAllocator wide(BinState(kBins, StateLayout::kWide),
                            make_rule(spec, kBins, kBalls));
    StreamingAllocator compact(BinState(kBins, StateLayout::kCompact),
                               make_rule(spec, kBins, kBalls));
    rng::Engine gen_w(7777);
    rng::Engine gen_c(7777);
    for (std::uint64_t i = 0; i < kBalls; ++i) {
      ASSERT_EQ(wide.place(gen_w), compact.place(gen_c)) << spec << " ball " << i;
    }
    expect_lockstep(wide.state(), compact.state());
  }
}

// The probe lookahead must not change placements either: exclusive-engine
// (buffered, prefetching) and shared-engine (direct) runs of the same
// seed produce identical allocations.
TEST(BinStateLayout, LookaheadPreservesPlacementsExactly) {
  constexpr std::uint32_t kBins = 128;
  constexpr std::uint64_t kBalls = 2000;
  for (const char* spec : {"one-choice", "greedy[2]", "greedy[3]", "left[4]"}) {
    StreamingAllocator buffered(BinState(kBins, StateLayout::kCompact),
                                make_rule(spec, kBins, kBalls));
    StreamingAllocator direct(BinState(kBins, StateLayout::kWide),
                              make_rule(spec, kBins, kBalls));
    buffered.set_engine_exclusive(true);
    rng::Engine gen_b(31337);
    rng::Engine gen_d(31337);
    for (std::uint64_t i = 0; i < kBalls; ++i) {
      ASSERT_EQ(buffered.place(gen_b), direct.place(gen_d)) << spec << " ball " << i;
    }
    expect_lockstep(direct.state(), buffered.state());
  }
}

// Revoking exclusivity discards the lookahead's undrained residue: an
// allocator traced with engine A and then driven by engine B must place
// exactly like one that never buffered A's words — B's seed, nothing else,
// decides the continuation.
TEST(BinStateLayout, DisablingExclusivityDiscardsBufferedWords) {
  constexpr std::uint32_t kBins = 64;
  StreamingAllocator buffered(kBins, make_rule("greedy[2]", kBins, 0));
  StreamingAllocator direct(kBins, make_rule("greedy[2]", kBins, 0));
  rng::Engine a1(5), a2(5);
  buffered.set_engine_exclusive(true);
  (void)buffered.place(a1);  // fills the lookahead from engine A
  (void)direct.place(a2);    // same placement, no buffering
  buffered.set_engine_exclusive(false);  // must drop A's residue
  rng::Engine b1(99), b2(99);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(buffered.place(b1), direct.place(b2)) << "ball " << i;
  }
  expect_lockstep(direct.state(), buffered.state());
}

// The pre-existing golden allocation pins (tests/rng/golden_test.cpp),
// rerun by streaming the same rules into a *compact* state: bit-for-bit
// the pinned loads. The compact layout changes storage, never placement.
TEST(BinStateLayout, GoldenAdaptivePinHoldsOnCompact) {
  rng::Engine gen(42);
  BinState state(10, StateLayout::kCompact);
  const auto rule = make_rule("adaptive", 10, 100);
  for (std::uint64_t i = 0; i < 100; ++i) (void)rule->place_one(state, gen);
  EXPECT_EQ(state.copy_loads(),
            (std::vector<std::uint32_t>{9, 10, 11, 9, 10, 8, 11, 10, 11, 11}));
  EXPECT_EQ(rule->probes(), 131u);
}

TEST(BinStateLayout, GoldenThresholdPinHoldsOnCompact) {
  rng::Engine gen(42);
  BinState state(10, StateLayout::kCompact);
  const auto rule = make_rule("threshold", 10, 100);
  for (std::uint64_t i = 0; i < 100; ++i) (void)rule->place_one(state, gen);
  EXPECT_EQ(state.copy_loads(),
            (std::vector<std::uint32_t>{10, 11, 10, 6, 9, 11, 11, 11, 11, 10}));
  EXPECT_EQ(rule->probes(), 104u);
}

}  // namespace
}  // namespace bbb::core
