/// Tests for the shared spec-string grammar (core/spec.hpp) used by the
/// batch-protocol, streaming-allocator, and workload registries.

#include "bbb/core/spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bbb::core {
namespace {

TEST(ParseSpec, NameOnly) {
  const ParsedSpec s = parse_spec("one-choice", "protocol");
  EXPECT_EQ(s.name, "one-choice");
  EXPECT_TRUE(s.args.empty());
}

TEST(ParseSpec, NameWithArgs) {
  const ParsedSpec s = parse_spec("memory[2,13]", "protocol");
  EXPECT_EQ(s.name, "memory");
  ASSERT_EQ(s.args.size(), 2u);
  EXPECT_EQ(s.args[0], 2u);
  EXPECT_EQ(s.args[1], 13u);
}

TEST(ParseSpec, EmptyBracketsGiveNoArgs) {
  EXPECT_TRUE(parse_spec("greedy[]", "allocator").args.empty());
}

TEST(ParseSpec, MalformedSpecsThrowWithKindPrefix) {
  EXPECT_THROW((void)parse_spec("greedy[", "allocator"), std::invalid_argument);
  EXPECT_THROW((void)parse_spec("greedy[x]", "allocator"), std::invalid_argument);
  EXPECT_THROW((void)parse_spec("greedy[1x]", "allocator"), std::invalid_argument);
  // std::stoull would wrap "-1" to 2^64 - 1 and skip leading whitespace or
  // '+'; the grammar rejects all of those as bad integers.
  EXPECT_THROW((void)parse_spec("greedy[-1]", "allocator"), std::invalid_argument);
  EXPECT_THROW((void)parse_spec("greedy[+1]", "allocator"), std::invalid_argument);
  EXPECT_THROW((void)parse_spec("greedy[ 1]", "allocator"), std::invalid_argument);
  EXPECT_THROW((void)parse_spec("memory[1,-2]", "protocol"), std::invalid_argument);
  // 2^64 and beyond overflow stoull and read as bad integers too.
  EXPECT_THROW((void)parse_spec("greedy[18446744073709551616]", "allocator"),
               std::invalid_argument);
  // Dangling and interior empty tokens are malformed, not ignored.
  EXPECT_THROW((void)parse_spec("greedy[2,]", "allocator"), std::invalid_argument);
  EXPECT_THROW((void)parse_spec("memory[,2]", "protocol"), std::invalid_argument);
  EXPECT_THROW((void)parse_spec("bursty[90,,5]", "workload"), std::invalid_argument);
  EXPECT_THROW((void)parse_spec("bursty[90,10,5,]", "workload"),
               std::invalid_argument);
  try {
    (void)parse_spec("greedy[x]", "workload");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("workload spec"), std::string::npos);
  }
}

TEST(SpecArg, PresentAndMissing) {
  const ParsedSpec s = parse_spec("cuckoo[2,4]", "protocol");
  EXPECT_EQ(spec_arg(s, 0, "cuckoo[2,4]", "protocol"), 2u);
  EXPECT_EQ(spec_arg(s, 1, "cuckoo[2,4]", "protocol"), 4u);
  EXPECT_THROW((void)spec_arg(s, 2, "cuckoo[2,4]", "protocol"),
               std::invalid_argument);
}

TEST(SpecArgU32, RejectsValuesAboveUint32Range) {
  // 2^32 + 1 parses as a valid uint64 but must not silently truncate to 1
  // when the consumer is a 32-bit protocol knob.
  const ParsedSpec s = parse_spec("greedy[4294967297]", "allocator");
  EXPECT_THROW((void)spec_arg_u32(s, 0, "greedy[4294967297]", "allocator"),
               std::invalid_argument);
  EXPECT_EQ(spec_arg_u32(parse_spec("greedy[4294967295]", "allocator"), 0,
                         "greedy[4294967295]", "allocator"),
            4294967295u);
  EXPECT_THROW((void)spec_optional_arg_u32(parse_spec("adaptive[4294967297]",
                                                      "protocol"),
                                           1, "adaptive[4294967297]", "protocol"),
               std::invalid_argument);
}

TEST(SpecPrefix, NoPrefixPassesThrough) {
  const SpecPrefix p = split_spec_prefix("greedy[2]", "protocol");
  EXPECT_TRUE(p.capacities.empty());
  EXPECT_FALSE(p.weighted);
  EXPECT_EQ(p.rest, "greedy[2]");
}

TEST(SpecPrefix, CapacitiesParsedAndStripped) {
  const SpecPrefix p = split_spec_prefix("capacities=1,2,4,8:greedy[2]", "protocol");
  EXPECT_EQ(p.capacities, (std::vector<std::uint32_t>{1, 2, 4, 8}));
  EXPECT_FALSE(p.weighted);
  EXPECT_EQ(p.rest, "greedy[2]");
}

TEST(SpecPrefix, WeightedParsedAndComposable) {
  const SpecPrefix w = split_spec_prefix("weighted:chains[90,110,8]", "workload");
  EXPECT_TRUE(w.weighted);
  EXPECT_EQ(w.rest, "chains[90,110,8]");
  // Both prefixes stack (registries decide which they accept).
  const SpecPrefix both =
      split_spec_prefix("weighted:capacities=2,3:one-choice", "protocol");
  EXPECT_TRUE(both.weighted);
  EXPECT_EQ(both.capacities, (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(both.rest, "one-choice");
}

TEST(SpecPrefix, MalformedPrefixesRejected) {
  EXPECT_THROW((void)split_spec_prefix("capacities=:one-choice", "protocol"),
               std::invalid_argument);
  EXPECT_THROW((void)split_spec_prefix("capacities=1,:one-choice", "protocol"),
               std::invalid_argument);
  EXPECT_THROW((void)split_spec_prefix("capacities=1,x:one-choice", "protocol"),
               std::invalid_argument);
  EXPECT_THROW((void)split_spec_prefix("capacities=0,2:one-choice", "protocol"),
               std::invalid_argument);
  EXPECT_THROW((void)split_spec_prefix("capacities=1,2", "protocol"),
               std::invalid_argument);  // missing ':'
  EXPECT_THROW((void)split_spec_prefix("weighted:", "workload"),
               std::invalid_argument);  // nothing after prefix
  EXPECT_THROW((void)split_spec_prefix("weighted:weighted:chains[90,110,8]",
                                       "workload"),
               std::invalid_argument);  // duplicate
  EXPECT_THROW(
      (void)split_spec_prefix("capacities=4294967296:one-choice", "protocol"),
      std::invalid_argument);  // out of u32 range
}

TEST(SpecPrefix, ExpandCapacitiesCyclesProfile) {
  EXPECT_EQ(expand_capacities({1, 2, 4}, 7),
            (std::vector<std::uint32_t>{1, 2, 4, 1, 2, 4, 1}));
  EXPECT_EQ(expand_capacities({5}, 3), (std::vector<std::uint32_t>{5, 5, 5}));
  EXPECT_THROW((void)expand_capacities({}, 4), std::invalid_argument);
  EXPECT_THROW((void)expand_capacities({1}, 0), std::invalid_argument);
}

TEST(SpecPrefix, CapacitiesPrefixRoundTrips) {
  const std::vector<std::uint32_t> profile{1, 2, 4, 8};
  const std::string prefix = capacities_prefix(profile);
  EXPECT_EQ(prefix, "capacities=1,2,4,8:");
  const SpecPrefix p = split_spec_prefix(prefix + "one-choice", "protocol");
  EXPECT_EQ(p.capacities, profile);
}

TEST(SpecOptionalArg, FallbackSingleAndTooMany) {
  EXPECT_EQ(spec_optional_arg(parse_spec("adaptive", "protocol"), 1, "adaptive",
                              "protocol"),
            1u);
  EXPECT_EQ(spec_optional_arg(parse_spec("adaptive[3]", "protocol"), 1,
                              "adaptive[3]", "protocol"),
            3u);
  EXPECT_THROW((void)spec_optional_arg(parse_spec("adaptive[1,2]", "protocol"), 1,
                                       "adaptive[1,2]", "protocol"),
               std::invalid_argument);
}

}  // namespace
}  // namespace bbb::core
