#include "bbb/core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::core {
namespace {

TEST(Metrics, MaxMinGapKnownVector) {
  const std::vector<std::uint32_t> loads{3, 1, 4, 1, 5};
  EXPECT_EQ(max_load(loads), 5u);
  EXPECT_EQ(min_load(loads), 1u);
  EXPECT_EQ(load_gap(loads), 4u);
}

TEST(Metrics, EmptyInputThrows) {
  const std::vector<std::uint32_t> empty;
  EXPECT_THROW((void)max_load(empty), std::invalid_argument);
  EXPECT_THROW((void)min_load(empty), std::invalid_argument);
  EXPECT_THROW((void)quadratic_potential(empty, 0), std::invalid_argument);
  EXPECT_THROW((void)log_exponential_potential(empty, 0), std::invalid_argument);
}

TEST(Metrics, QuadraticPotentialByHand) {
  // loads {0, 2}, t = 2, avg = 1: Psi = 1 + 1 = 2.
  EXPECT_DOUBLE_EQ(quadratic_potential(std::vector<std::uint32_t>{0, 2}, 2), 2.0);
  // Perfectly balanced: Psi = 0.
  EXPECT_DOUBLE_EQ(quadratic_potential(std::vector<std::uint32_t>{3, 3, 3}, 9), 0.0);
}

TEST(Metrics, ExponentialPotentialByHand) {
  // loads {1, 1}, t = 2, avg = 1, eps = 1/200:
  // Phi = 2 * (1.005)^(1 + 2 - 1) = 2 * 1.005^2.
  const double expected = 2.0 * std::pow(1.005, 2.0);
  EXPECT_NEAR(exponential_potential(std::vector<std::uint32_t>{1, 1}, 2), expected,
              1e-12);
}

TEST(Metrics, LogPhiMatchesDirectPhi) {
  rng::Engine gen(5);
  std::vector<std::uint32_t> loads(64);
  std::uint64_t balls = 0;
  for (auto& l : loads) {
    l = static_cast<std::uint32_t>(rng::uniform_below(gen, 10));
    balls += l;
  }
  const double direct = exponential_potential(loads, balls);
  const double logged = log_exponential_potential(loads, balls);
  EXPECT_NEAR(logged, std::log(direct), 1e-9);
}

TEST(Metrics, LogPhiStableWhereDirectOverflows) {
  // A single huge hole: direct Phi overflows to inf, log form must not.
  std::vector<std::uint32_t> loads(4, 500'000);
  loads[0] = 0;  // hole of depth ~500000
  const std::uint64_t balls = 3 * 500'000ULL;
  const double direct = exponential_potential(loads, balls);
  EXPECT_TRUE(std::isinf(direct));
  const double logged = log_exponential_potential(loads, balls);
  EXPECT_TRUE(std::isfinite(logged));
  // Dominant term: (avg + 2 - 0) * ln(1.005), avg = 375000.
  EXPECT_NEAR(logged, (375'000.0 + 2.0) * std::log1p(0.005), 1.0);
}

TEST(Metrics, HolesAgainstCapacity) {
  const std::vector<std::uint32_t> loads{0, 1, 3, 2};
  // capacity 3: holes = 3 + 2 + 0 + 1 = 6.
  EXPECT_EQ(total_holes(loads, 3), 6u);
  // capacity 1: only bins below 1 contribute: bin0 -> 1.
  EXPECT_EQ(total_holes(loads, 1), 1u);
}

TEST(Metrics, EmptyBinsCount) {
  EXPECT_EQ(empty_bins(std::vector<std::uint32_t>{0, 1, 0, 2}), 2u);
  EXPECT_EQ(empty_bins(std::vector<std::uint32_t>{1, 1}), 0u);
}

TEST(Metrics, LoadHistogramMatchesCounts) {
  const std::vector<std::uint32_t> loads{2, 2, 3, 0};
  const auto h = load_histogram(loads);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.count(0), 1u);
}

TEST(Metrics, ComputeMetricsConsistentWithPieces) {
  const std::vector<std::uint32_t> loads{1, 4, 2, 1};
  const std::uint64_t balls = 8;
  const LoadMetrics m = compute_metrics(loads, balls);
  EXPECT_EQ(m.max, max_load(loads));
  EXPECT_EQ(m.min, min_load(loads));
  EXPECT_EQ(m.gap, load_gap(loads));
  EXPECT_DOUBLE_EQ(m.psi, quadratic_potential(loads, balls));
  EXPECT_DOUBLE_EQ(m.log_phi, log_exponential_potential(loads, balls));
  EXPECT_DOUBLE_EQ(m.average, 2.0);
}

TEST(Metrics, PsiBoundedByPhiForBoundedAboveLoads) {
  // Section 2 of the paper: if max load <= t/n + O(1) then Psi = O(Phi).
  // Empirically check Psi <= Phi on balanced-ish random vectors where the
  // max is at most avg + 2 (the +2 in Phi's exponent guarantees each bin's
  // Phi term is >= 1 while its Psi term is (l - avg)^2 <= Phi_i for holes).
  rng::Engine gen(17);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<std::uint32_t> loads(100);
    std::uint64_t balls = 0;
    for (auto& l : loads) {
      l = static_cast<std::uint32_t>(10 + rng::uniform_below(gen, 3));  // 10..12
      balls += l;
    }
    const double psi = quadratic_potential(loads, balls);
    const double phi = exponential_potential(loads, balls);
    // O(Phi) with a generous constant: here loads deviate by <= 2 from avg,
    // so Psi <= 4n while Phi >= n.
    EXPECT_LE(psi, 4.0 * phi);
  }
}

TEST(NormalizedMetrics, KnownValues) {
  const std::vector<std::uint32_t> loads{2, 2, 8};
  const std::vector<std::uint32_t> caps{1, 2, 4};
  const NormalizedLoadMetrics m = compute_normalized_metrics(loads, caps, 12);
  EXPECT_DOUBLE_EQ(m.max_norm, 2.0);
  EXPECT_DOUBLE_EQ(m.min_norm, 1.0);
  EXPECT_DOUBLE_EQ(m.gap_norm, 1.0);
  EXPECT_DOUBLE_EQ(m.norm_average, 12.0 / 7.0);
  // sum c (l/c - t/C)^2 = 1*(2-12/7)^2 + 2*(1-12/7)^2 + 4*(2-12/7)^2.
  const double a = 2.0 - 12.0 / 7.0;
  const double b = 1.0 - 12.0 / 7.0;
  EXPECT_NEAR(m.weighted_psi, a * a + 2.0 * b * b + 4.0 * a * a, 1e-12);
}

TEST(NormalizedMetrics, UnitCapacitiesReduceToUnweighted) {
  const std::vector<std::uint32_t> loads{0, 3, 1, 2};
  const std::vector<std::uint32_t> caps(4, 1);
  const NormalizedLoadMetrics m = compute_normalized_metrics(loads, caps, 6);
  EXPECT_DOUBLE_EQ(m.max_norm, static_cast<double>(max_load(loads)));
  EXPECT_DOUBLE_EQ(m.min_norm, static_cast<double>(min_load(loads)));
  EXPECT_NEAR(m.weighted_psi, quadratic_potential(loads, 6), 1e-12);
}

TEST(NormalizedMetrics, Validation) {
  const std::vector<std::uint32_t> loads{1, 2};
  const std::vector<std::uint32_t> empty;
  const std::vector<std::uint32_t> short_caps{1};
  const std::vector<std::uint32_t> zero_caps{1, 0};
  EXPECT_THROW((void)compute_normalized_metrics(empty, empty, 0),
               std::invalid_argument);
  EXPECT_THROW((void)compute_normalized_metrics(loads, short_caps, 3),
               std::invalid_argument);
  EXPECT_THROW((void)compute_normalized_metrics(loads, zero_caps, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace bbb::core
