/// Scalar-vs-kernel lockstep for the batch placement layer: place_batch
/// must be bit-identical to the same number of place_one calls — same
/// bins ball for ball, same counters, same incremental metrics (the FP
/// accumulations included) — for every family, every batch size around
/// the wave boundaries, every compiled SIMD tier the CPU supports, and
/// states straddling the 255 -> 256 side-table promotion. Plus the ISA
/// backends pinned byte-for-byte against the scalar reference, and the
/// place_one/place_batch interleave (the lookahead residue hand-back).

#include "bbb/core/batch_kernel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bbb/core/protocols/d_choice.hpp"
#include "bbb/core/protocols/left_d.hpp"
#include "bbb/core/protocols/one_choice.hpp"
#include "bbb/core/rule.hpp"
#include "bbb/core/simd/batch_ops.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::core {
namespace {

using RuleFactory = std::function<std::unique_ptr<PlacementRule>(std::uint32_t n)>;

struct Family {
  const char* name;
  RuleFactory make;
};

/// The four families the satellite sweep names. greedy[3] has no vector
/// kernel (data-dependent reservoir tie draws) — its place_batch is the
/// base loop, and this suite pins that the dispatch seam stays exact.
const Family kFamilies[] = {
    {"one-choice", [](std::uint32_t) { return std::make_unique<OneChoiceRule>(); }},
    {"greedy[2]", [](std::uint32_t) { return std::make_unique<DChoiceRule>(2); }},
    {"greedy[3]", [](std::uint32_t) { return std::make_unique<DChoiceRule>(3); }},
    {"left[2]", [](std::uint32_t n) { return std::make_unique<LeftDRule>(n, 2); }},
};

/// Every observable of the two runs must be *identical*, not close: the
/// kernel replays add_ball's FP operation order, so even lnPhi matches
/// bit for bit.
void expect_states_equal(const BinState& a, const BinState& b) {
  ASSERT_EQ(a.n(), b.n());
  EXPECT_EQ(a.balls(), b.balls());
  EXPECT_EQ(a.max_load(), b.max_load());
  EXPECT_EQ(a.min_load(), b.min_load());
  EXPECT_EQ(a.level_counts(), b.level_counts());
  EXPECT_EQ(a.psi(), b.psi());
  EXPECT_EQ(a.log_phi(), b.log_phi());
  EXPECT_EQ(a.copy_loads(), b.copy_loads());
}

/// Drive `m` balls through place_one (reference) and place_batch (kernel
/// path when eligible) from the same seed and compare every placement.
void expect_lockstep(const Family& family, std::uint32_t n, std::uint64_t m,
                     std::uint64_t seed = 42,
                     StateLayout layout = StateLayout::kCompact) {
  rng::Engine gen_ref(seed);
  BinState ref_state(n, layout);
  auto ref_rule = family.make(n);
  ref_rule->set_engine_exclusive(true);
  std::vector<std::uint32_t> ref_bins(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    ref_bins[i] = ref_rule->place_one(ref_state, gen_ref);
  }

  rng::Engine gen_bat(seed);
  BinState bat_state(n, layout);
  auto bat_rule = family.make(n);
  bat_rule->set_engine_exclusive(true);
  std::vector<std::uint32_t> bat_bins(m);
  bat_rule->place_batch(bat_state, m, gen_bat, bat_bins.data());

  for (std::uint64_t i = 0; i < m; ++i) {
    ASSERT_EQ(ref_bins[i], bat_bins[i])
        << family.name << " n=" << n << " m=" << m << " ball " << i;
  }
  EXPECT_EQ(ref_rule->probes(), bat_rule->probes());
  EXPECT_EQ(ref_rule->total_placed(), bat_rule->total_placed());
  expect_states_equal(ref_state, bat_state);
}

TEST(BatchKernel, LockstepAcrossBatchSizesOneToSixtyFour) {
  for (const Family& family : kFamilies) {
    for (std::uint64_t m = 1; m <= 64; ++m) {
      expect_lockstep(family, /*n=*/97, m, /*seed=*/1000 + m);
    }
  }
}

TEST(BatchKernel, LockstepAroundWaveBoundaries) {
  // kWaveWords = 256 words is 128 greedy[2]/left[2] balls or 256
  // one-choice balls per wave; straddle both boundaries and a multi-wave
  // run. Small n forces dense in-wave duplicates — the live-lane commit
  // must serialize them exactly as the scalar stream does.
  const std::uint64_t sizes[] = {127, 128, 129, 255, 256, 257, 1000};
  for (const Family& family : kFamilies) {
    for (const std::uint32_t n : {2u, 5u, 64u, 4096u}) {
      for (const std::uint64_t m : sizes) {
        expect_lockstep(family, n, m, /*seed=*/7 * n + m);
      }
    }
  }
}

TEST(BatchKernel, LockstepOnLargeFastPathState) {
  // The live-lane commit serializes in-wave duplicates instead of
  // falling back, and a power-of-two bound never raises a Lemire
  // rejection — so on this state every single ball must take the wave
  // walk, checked by the kernel counters.
  for (const Family& family : kFamilies) {
    expect_lockstep(family, /*n=*/1u << 20, /*m=*/20000, /*seed=*/3);
  }
  DChoiceRule rule(2);
  BinState state(1u << 20, StateLayout::kCompact);
  rng::Engine gen(3);
  rule.set_engine_exclusive(true);
  rule.place_batch(state, 20000, gen);
  ASSERT_NE(rule.batch_kernel(), nullptr);
  EXPECT_EQ(rule.batch_kernel()->fast_balls(), 20000u);
  EXPECT_EQ(rule.batch_kernel()->fallback_balls(), 0u);
}

TEST(BatchKernel, LockstepAcrossSideTablePromotion) {
  // m = 300 * n pushes every lane through the 255 -> 256 promotion: the
  // saturation guard must hand the near-ceiling waves to the exact scalar
  // path, and placements must stay identical straight through it.
  for (const Family& family : kFamilies) {
    expect_lockstep(family, /*n=*/8, /*m=*/8 * 300, /*seed=*/11);
    expect_lockstep(family, /*n=*/64, /*m=*/64 * 260, /*seed=*/13);
  }
}

TEST(BatchKernel, LockstepAcrossSimdTiers) {
  const auto ceiling = static_cast<int>(simd::detected_simd_tier());
  for (int t = 0; t <= ceiling; ++t) {
    simd::set_simd_tier_override(static_cast<simd::SimdTier>(t));
    for (const Family& family : kFamilies) {
      expect_lockstep(family, /*n=*/1u << 14, /*m=*/5000, /*seed=*/17 + t);
    }
  }
  simd::clear_simd_tier_override();
}

TEST(BatchKernel, InterleavedPlaceOneAndBatchMatchesPureStream) {
  // The residue hand-back: a place_one right after a place_batch must see
  // exactly the word a pure place_one stream would (the kernel returns
  // its undrained read-ahead to the lookahead).
  for (const Family& family : kFamilies) {
    const std::uint32_t n = 512;
    rng::Engine gen_ref(99);
    BinState ref_state(n, StateLayout::kCompact);
    auto ref_rule = family.make(n);
    ref_rule->set_engine_exclusive(true);
    std::vector<std::uint32_t> ref_bins;
    for (int i = 0; i < 700; ++i) {
      ref_bins.push_back(ref_rule->place_one(ref_state, gen_ref));
    }

    rng::Engine gen_mix(99);
    BinState mix_state(n, StateLayout::kCompact);
    auto mix_rule = family.make(n);
    mix_rule->set_engine_exclusive(true);
    std::vector<std::uint32_t> mix_bins;
    const std::uint64_t chunks[] = {1, 130, 1, 1, 64, 3, 200, 300};
    for (const std::uint64_t chunk : chunks) {
      if (chunk == 1) {
        mix_bins.push_back(mix_rule->place_one(mix_state, gen_mix));
      } else {
        std::vector<std::uint32_t> got(chunk);
        mix_rule->place_batch(mix_state, chunk, gen_mix, got.data());
        mix_bins.insert(mix_bins.end(), got.begin(), got.end());
      }
    }
    ASSERT_EQ(ref_bins.size(), mix_bins.size());
    for (std::size_t i = 0; i < ref_bins.size(); ++i) {
      ASSERT_EQ(ref_bins[i], mix_bins[i]) << family.name << " ball " << i;
    }
    expect_states_equal(ref_state, mix_state);
  }
}

TEST(BatchKernel, IneligibleStatesTakeTheBaseLoop) {
  // Wide layout and heterogeneous capacities must not engage the kernel —
  // and must still match the scalar stream (the base loop IS that
  // stream). The kernel counters stay at zero.
  for (const Family& family : kFamilies) {
    expect_lockstep(family, /*n=*/256, /*m=*/500, /*seed=*/5,
                    StateLayout::kWide);
  }
  DChoiceRule rule(2);
  BinState wide(256, StateLayout::kWide);
  rng::Engine gen(5);
  rule.set_engine_exclusive(true);
  rule.place_batch(wide, 500, gen);
  ASSERT_NE(rule.batch_kernel(), nullptr);
  EXPECT_EQ(rule.batch_kernel()->batches(), 0u);

  // Without the engine-exclusivity promise the kernel may not read ahead.
  DChoiceRule plain(2);
  BinState compact(256, StateLayout::kCompact);
  plain.place_batch(compact, 100, gen);
  EXPECT_EQ(plain.batch_kernel()->batches(), 0u);

  // All-equal-but-explicit capacities are uniform yet carry per-class
  // metric state the lean commit skips: must route to the base loop.
  BinState capped(std::vector<std::uint32_t>(64, 3), StateLayout::kCompact);
  DChoiceRule capped_rule(2);
  capped_rule.set_engine_exclusive(true);
  capped_rule.place_batch(capped, 100, gen);
  EXPECT_EQ(capped_rule.batch_kernel()->batches(), 0u);
}

// -- ISA backend primitives -------------------------------------------------

TEST(BatchOps, TierNamesRoundTrip) {
  EXPECT_EQ(simd::to_string(simd::SimdTier::kScalar), "scalar");
  EXPECT_EQ(simd::to_string(simd::SimdTier::kAvx2), "avx2");
  EXPECT_EQ(simd::to_string(simd::SimdTier::kAvx512bw), "avx512bw");
  EXPECT_EQ(simd::parse_simd_tier("scalar"), simd::SimdTier::kScalar);
  EXPECT_EQ(simd::parse_simd_tier("avx2"), simd::SimdTier::kAvx2);
  EXPECT_EQ(simd::parse_simd_tier("avx512bw"), simd::SimdTier::kAvx512bw);
  EXPECT_THROW((void)simd::parse_simd_tier("sse2"), std::invalid_argument);
}

TEST(BatchOps, DispatchNeverExceedsDetection) {
  EXPECT_LE(static_cast<int>(simd::active_simd_tier()),
            static_cast<int>(simd::detected_simd_tier()));
  simd::set_simd_tier_override(simd::SimdTier::kScalar);
  EXPECT_EQ(simd::active_simd_tier(), simd::SimdTier::kScalar);
  EXPECT_EQ(simd::active_ops().tier, simd::SimdTier::kScalar);
  simd::clear_simd_tier_override();
}

/// 2^64 mod bound — the Lemire rejection threshold callers pass in.
std::uint64_t lemire_threshold(std::uint32_t bound) {
  const auto b = static_cast<std::uint64_t>(bound);
  return (0 - b) % b;
}

TEST(BatchOps, BackendsMatchScalarReferenceByteForByte) {
  // Every tier the CPU supports, against the scalar reference (which is
  // itself pinned against the plain 128-bit definition), across lengths
  // covering empty, sub-vector, vector-boundary, and multi-vector arrays
  // of both backends (4 and 8 words per step) plus odd counts, and
  // stream pairs covering the one-choice/greedy[2] shape (identical
  // streams), the left[2] shape (split bounds and bases), and both
  // power-of-two (threshold 0, never rejects) and non-power bounds.
  rng::Engine gen(123);
  const auto ceiling = static_cast<int>(simd::detected_simd_tier());
  const std::uint32_t lengths[] = {0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 100, 256};
  const simd::MapStream pairs[][2] = {
      {{97, 0, lemire_threshold(97)}, {97, 0, lemire_threshold(97)}},
      {{1u << 20, 0, 0}, {1u << 20, 0, 0}},
      {{50, 0, lemire_threshold(50)}, {51, 50, lemire_threshold(51)}},
      {{1, 0, 0}, {1, 0, 0}},
  };
  for (const auto& streams : pairs) {
    for (const std::uint32_t count : lengths) {
      for (const bool plant_zero : {false, true}) {
        std::vector<std::uint64_t> words(count);
        for (auto& w : words) w = gen();
        // A zero word is a rejection candidate for every non-power-of-two
        // bound (low64(0 * b) = 0 < threshold), so planting one exercises
        // the reject=true return without hunting for a ~b/2^64 event.
        if (plant_zero && count > 2) words[count - 2] = 0;
        std::vector<std::uint32_t> bins_ref(count);
        const bool rej_ref = simd::scalar_ops().map_words(
            words.data(), count, streams[0], streams[1], bins_ref.data());
        bool rej_naive = false;
        for (std::uint32_t i = 0; i < count; ++i) {
          const simd::MapStream& s = (i & 1u) != 0 ? streams[1] : streams[0];
          const auto prod = static_cast<__uint128_t>(words[i]) * s.bound;
          EXPECT_EQ(bins_ref[i],
                    s.base + static_cast<std::uint32_t>(prod >> 64))
              << "i=" << i;
          rej_naive |= static_cast<std::uint64_t>(prod) < s.threshold;
        }
        EXPECT_EQ(rej_ref, rej_naive);
        for (int t = 1; t <= ceiling; ++t) {
          simd::set_simd_tier_override(static_cast<simd::SimdTier>(t));
          const simd::SimdOps& ops = simd::active_ops();
          ASSERT_EQ(static_cast<int>(ops.tier), t);
          std::vector<std::uint32_t> bins(count);
          const bool rej = ops.map_words(words.data(), count, streams[0],
                                         streams[1], bins.data());
          EXPECT_EQ(rej, rej_ref) << "tier " << t << " count " << count;
          EXPECT_EQ(bins, bins_ref) << "tier " << t << " count " << count;
          simd::clear_simd_tier_override();
        }
      }
    }
  }
}

TEST(BatchKernel, EligibilityPredicate) {
  BinState compact(16, StateLayout::kCompact);
  BinState wide(16, StateLayout::kWide);
  BinState capped(std::vector<std::uint32_t>(16, 2), StateLayout::kCompact);
  ProbeLookahead on;
  on.set_enabled(true);
  ProbeLookahead off;
  EXPECT_TRUE(BatchPlacer::eligible(compact, on));
  EXPECT_FALSE(BatchPlacer::eligible(compact, off));
  EXPECT_FALSE(BatchPlacer::eligible(wide, on));
  EXPECT_FALSE(BatchPlacer::eligible(capped, on));
}

}  // namespace
}  // namespace bbb::core
