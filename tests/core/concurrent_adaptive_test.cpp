#include "bbb/core/concurrent_adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/rng/streams.hpp"

namespace bbb::core {
namespace {

TEST(ConcurrentAdaptive, Validation) {
  EXPECT_THROW(ConcurrentAdaptiveAllocator(0), std::invalid_argument);
}

TEST(ConcurrentAdaptive, SingleThreadBehavesLikeAdaptive) {
  // One thread, no races: the guarantee and the probe accounting must look
  // exactly like sequential adaptive's.
  constexpr std::uint32_t n = 128;
  constexpr std::uint64_t m = 16ULL * n;
  ConcurrentAdaptiveAllocator alloc(n);
  rng::Engine gen(3);
  for (std::uint64_t i = 0; i < m; ++i) (void)alloc.place(gen);
  EXPECT_EQ(alloc.balls(), m);
  EXPECT_GE(alloc.probes(), m);
  const auto loads = alloc.loads_snapshot();
  EXPECT_LE(max_load(loads), ceil_div(m, n) + 1);
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}), m);
}

struct ThreadCase {
  std::uint32_t threads;
  std::uint32_t n;
  std::uint64_t balls_per_thread;
};

void PrintTo(const ThreadCase& c, std::ostream* os) {
  *os << c.threads << "thr,n=" << c.n << ",per=" << c.balls_per_thread;
}

class ConcurrentPlacementTest : public ::testing::TestWithParam<ThreadCase> {};

TEST_P(ConcurrentPlacementTest, GuaranteeHoldsUnderConcurrency) {
  const auto& [threads, n, per_thread] = GetParam();
  const std::uint64_t m = static_cast<std::uint64_t>(threads) * per_thread;
  ConcurrentAdaptiveAllocator alloc(n);

  std::vector<std::thread> workers;
  workers.reserve(threads);
  rng::SeedSequence seq(99);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&alloc, per_thread, engine = seq.engine(t)]() mutable {
      for (std::uint64_t i = 0; i < per_thread; ++i) (void)alloc.place(engine);
    });
  }
  for (auto& w : workers) w.join();

  // Conservation: every placement incremented exactly one load and the
  // counter exactly once.
  EXPECT_EQ(alloc.balls(), m);
  const auto loads = alloc.loads_snapshot();
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}), m);
  // The paper's bound survives any interleaving.
  EXPECT_LE(max_load(loads), ceil_div(m, n) + 1);
  // Probes at least one per ball.
  EXPECT_GE(alloc.probes(), m);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadGrid, ConcurrentPlacementTest,
    ::testing::Values(ThreadCase{2, 64, 512}, ThreadCase{4, 64, 512},
                      ThreadCase{4, 256, 2048}, ThreadCase{8, 128, 1024},
                      ThreadCase{3, 33, 700}  // odd shapes
                      ));

TEST(ConcurrentAdaptive, SmoothnessSurvivesConcurrency) {
  // Corollary 3.5's gap bound is a property of the acceptance rule; check it
  // empirically under 4 placers.
  constexpr std::uint32_t n = 1 << 10;
  constexpr std::uint32_t threads = 4;
  constexpr std::uint64_t per = 8ULL * n / threads;
  ConcurrentAdaptiveAllocator alloc(n);
  std::vector<std::thread> workers;
  rng::SeedSequence seq(7);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&alloc, engine = seq.engine(t)]() mutable {
      for (std::uint64_t i = 0; i < per; ++i) (void)alloc.place(engine);
    });
  }
  for (auto& w : workers) w.join();
  const auto loads = alloc.loads_snapshot();
  EXPECT_LE(load_gap(loads), 6.0 * std::log(static_cast<double>(n)) + 6.0);
}

}  // namespace
}  // namespace bbb::core
