/// Tests for the unified bin-load state: the LoadVector-style counting
/// API plus the O(1) incremental metrics, checked against the batch
/// recomputation in core/metrics.hpp.

#include "bbb/core/bin_state.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "bbb/core/metrics.hpp"

namespace bbb::core {
namespace {

// Recompute every incremental metric from the raw loads and compare. This
// is the core correctness property of BinState: no event sequence may
// drift the incremental values away from the batch definitions.
void expect_metrics_match(const BinState& state, double tol = 1e-9) {
  const auto& loads = state.loads();
  const LoadMetrics batch = compute_metrics(loads, state.balls());
  EXPECT_EQ(state.max_load(), batch.max);
  EXPECT_EQ(state.min_load(), batch.min);
  EXPECT_EQ(state.gap(), batch.gap);
  EXPECT_NEAR(state.psi(), batch.psi, tol * (1.0 + std::abs(batch.psi)));
  EXPECT_NEAR(state.log_phi(), batch.log_phi, tol * (1.0 + std::abs(batch.log_phi)));
  std::uint32_t nonempty = 0;
  for (const auto l : loads) nonempty += l > 0 ? 1 : 0;
  EXPECT_EQ(state.nonempty_bins(), nonempty);
}

TEST(BinState, RejectsZeroBins) {
  EXPECT_THROW(BinState(0), std::invalid_argument);
}

TEST(BinState, StartsEmpty) {
  BinState v(4);
  EXPECT_EQ(v.n(), 4u);
  EXPECT_EQ(v.balls(), 0u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(v.load(i), 0u);
  EXPECT_DOUBLE_EQ(v.average(), 0.0);
  EXPECT_EQ(v.max_load(), 0u);
  EXPECT_EQ(v.min_load(), 0u);
  EXPECT_EQ(v.nonempty_bins(), 0u);
  EXPECT_DOUBLE_EQ(v.psi(), 0.0);
  expect_metrics_match(v);
}

TEST(BinState, AddAndRemove) {
  BinState v(3);
  v.add_ball(1);
  v.add_ball(1);
  v.add_ball(2);
  EXPECT_EQ(v.balls(), 3u);
  EXPECT_EQ(v.load(0), 0u);
  EXPECT_EQ(v.load(1), 2u);
  EXPECT_EQ(v.load(2), 1u);
  EXPECT_DOUBLE_EQ(v.average(), 1.0);
  expect_metrics_match(v);
  v.remove_ball(1);
  EXPECT_EQ(v.balls(), 2u);
  EXPECT_EQ(v.load(1), 1u);
  expect_metrics_match(v);
}

TEST(BinState, ClearResetsEverything) {
  BinState v(2);
  v.add_ball(0);
  v.add_ball(0);
  v.add_ball(1);
  v.clear();
  EXPECT_EQ(v.balls(), 0u);
  EXPECT_EQ(v.load(0), 0u);
  EXPECT_EQ(v.load(1), 0u);
  EXPECT_EQ(v.max_load(), 0u);
  EXPECT_EQ(v.min_load(), 0u);
  EXPECT_EQ(v.nonempty_bins(), 0u);
  EXPECT_DOUBLE_EQ(v.psi(), 0.0);
  expect_metrics_match(v);
  // The cleared state is fully usable again.
  v.add_ball(1);
  EXPECT_EQ(v.max_load(), 1u);
  expect_metrics_match(v);
}

TEST(BinState, LoadsViewMatchesState) {
  BinState v(3);
  v.add_ball(2);
  v.add_ball(2);
  const auto& loads = v.loads();
  EXPECT_EQ(loads, (std::vector<std::uint32_t>{0, 0, 2}));
}

TEST(BinState, MetricsStayExactUnderRandomChurn) {
  const std::uint32_t n = 32;
  BinState state(n);
  rng::Engine gen(123);
  std::vector<std::uint32_t> mirror(n, 0);
  std::uint64_t balls = 0;
  for (int step = 0; step < 5000; ++step) {
    const bool add = balls == 0 || rng::bernoulli(gen, 0.55);
    if (add) {
      const auto bin = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
      state.add_ball(bin);
      ++mirror[bin];
      ++balls;
    } else {
      const std::uint32_t bin = state.sample_nonempty(gen);
      state.remove_ball(bin);
      --mirror[bin];
      --balls;
    }
    ASSERT_EQ(state.balls(), balls);
    ASSERT_EQ(state.loads(), mirror);
    if (step % 97 == 0) expect_metrics_match(state);
  }
  expect_metrics_match(state);
}

TEST(BinState, TailCountsMatchScan) {
  BinState state(8);
  rng::Engine gen(7);
  for (int i = 0; i < 40; ++i) {
    state.add_ball(static_cast<std::uint32_t>(rng::uniform_below(gen, 8)));
  }
  for (std::uint32_t k = 0; k <= state.max_load() + 2; ++k) {
    std::uint32_t scan = 0;
    for (const auto l : state.loads()) scan += l >= k ? 1 : 0;
    EXPECT_EQ(state.bins_with_load_at_least(k), scan) << "k=" << k;
  }
}

TEST(BinState, RemoveFromEmptyBinThrows) {
  BinState state(4);
  EXPECT_THROW(state.remove_ball(0), std::invalid_argument);
  state.add_ball(1);
  EXPECT_THROW(state.remove_ball(0), std::invalid_argument);
  state.remove_ball(1);
  EXPECT_EQ(state.balls(), 0u);
}

TEST(BinState, SampleNonemptyRequiresABall) {
  BinState state(4);
  rng::Engine gen(1);
  EXPECT_THROW((void)state.sample_nonempty(gen), std::logic_error);
  state.add_ball(2);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(state.sample_nonempty(gen), 2u);
}

// ---------------------------------------------------------------------------
// Weighted balls
// ---------------------------------------------------------------------------

TEST(BinStateWeighted, WeightedAddEqualsRepeatedUnitAdds) {
  BinState atomic(5), unit(5);
  atomic.add_ball(2, 7);
  for (int i = 0; i < 7; ++i) unit.add_ball(2);
  EXPECT_EQ(atomic.loads(), unit.loads());
  EXPECT_EQ(atomic.balls(), unit.balls());
  EXPECT_EQ(atomic.max_load(), unit.max_load());
  EXPECT_EQ(atomic.min_load(), unit.min_load());
  EXPECT_DOUBLE_EQ(atomic.psi(), unit.psi());
  EXPECT_NEAR(atomic.log_phi(), unit.log_phi(), 1e-12);
  atomic.remove_ball(2, 3);
  for (int i = 0; i < 3; ++i) unit.remove_ball(2);
  EXPECT_EQ(atomic.loads(), unit.loads());
  EXPECT_DOUBLE_EQ(atomic.psi(), unit.psi());
}

TEST(BinStateWeighted, RejectsZeroAndOverflowingWeights) {
  BinState state(2);
  EXPECT_THROW(state.add_ball(0, 0), std::invalid_argument);
  EXPECT_THROW(state.remove_ball(0, 0), std::invalid_argument);
  state.add_ball(0, 3);
  EXPECT_THROW(state.remove_ball(0, 4), std::invalid_argument);  // > load
  // 1000 + (2^32 - 500) wraps 32 bits: rejected before any mutation.
  state.add_ball(1, 1000);
  EXPECT_THROW(state.add_ball(1, std::numeric_limits<std::uint32_t>::max() - 500),
               std::invalid_argument);
  // The failed calls left nothing behind.
  EXPECT_EQ(state.load(0), 3u);
  EXPECT_EQ(state.load(1), 1000u);
  EXPECT_EQ(state.balls(), 1003u);
}

TEST(BinStateWeighted, MetricsStayExactUnderRandomWeightedChurn) {
  const std::uint32_t n = 24;
  BinState state(n);
  rng::Engine gen(2024);
  std::vector<std::uint32_t> mirror(n, 0);
  std::uint64_t balls = 0;
  for (int step = 0; step < 4000; ++step) {
    const bool add = balls == 0 || rng::bernoulli(gen, 0.55);
    const auto bin = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
    if (add) {
      const auto w = static_cast<std::uint32_t>(1 + rng::uniform_below(gen, 9));
      state.add_ball(bin, w);
      mirror[bin] += w;
      balls += w;
    } else if (mirror[bin] > 0) {
      const auto w =
          static_cast<std::uint32_t>(1 + rng::uniform_below(gen, mirror[bin]));
      state.remove_ball(bin, w);
      mirror[bin] -= w;
      balls -= w;
    }
    ASSERT_EQ(state.balls(), balls);
    ASSERT_EQ(state.loads(), mirror);
    if (step % 97 == 0) expect_metrics_match(state);
  }
  expect_metrics_match(state);
}

// ---------------------------------------------------------------------------
// Heterogeneous capacities
// ---------------------------------------------------------------------------

void expect_norm_metrics_match(const BinState& state, double tol = 1e-9) {
  std::vector<std::uint32_t> caps(state.capacities());
  if (caps.empty()) caps.assign(state.n(), 1);
  const NormalizedLoadMetrics batch =
      compute_normalized_metrics(state.loads(), caps, state.balls());
  EXPECT_DOUBLE_EQ(state.max_norm_load(), batch.max_norm);
  EXPECT_DOUBLE_EQ(state.min_norm_load(), batch.min_norm);
  EXPECT_NEAR(state.norm_gap(), batch.gap_norm, tol);
  EXPECT_NEAR(state.weighted_psi(), batch.weighted_psi,
              tol * (1.0 + std::abs(batch.weighted_psi)));
  EXPECT_DOUBLE_EQ(state.norm_average(), batch.norm_average);
}

TEST(BinStateCapacity, RejectsBadCapacities) {
  EXPECT_THROW(BinState(std::vector<std::uint32_t>{}), std::invalid_argument);
  EXPECT_THROW(BinState(std::vector<std::uint32_t>{1, 0, 2}), std::invalid_argument);
}

TEST(BinStateCapacity, UniformStateReportsUnitCapacities) {
  BinState state(4);
  EXPECT_TRUE(state.uniform_capacity());
  EXPECT_EQ(state.total_capacity(), 4u);
  EXPECT_EQ(state.capacity(3), 1u);
  EXPECT_TRUE(state.capacities().empty());
  state.add_ball(0, 5);
  EXPECT_DOUBLE_EQ(state.max_norm_load(), 5.0);
  EXPECT_DOUBLE_EQ(state.weighted_psi(), state.psi());
  expect_norm_metrics_match(state);
}

TEST(BinStateCapacity, AllEqualCapacitiesStayUniform) {
  BinState state(std::vector<std::uint32_t>{4, 4, 4});
  EXPECT_TRUE(state.uniform_capacity());
  EXPECT_EQ(state.total_capacity(), 12u);
  state.add_ball(1, 6);
  EXPECT_DOUBLE_EQ(state.max_norm_load(), 1.5);
  expect_norm_metrics_match(state);
}

TEST(BinStateCapacity, HeterogeneousNormalizedMetrics) {
  BinState state(std::vector<std::uint32_t>{1, 2, 4, 8});
  EXPECT_FALSE(state.uniform_capacity());
  EXPECT_EQ(state.total_capacity(), 15u);
  state.add_ball(3, 8);  // l/c = 1 in the biggest bin
  state.add_ball(0, 2);  // l/c = 2 in the smallest
  EXPECT_DOUBLE_EQ(state.max_norm_load(), 2.0);
  EXPECT_DOUBLE_EQ(state.min_norm_load(), 0.0);
  EXPECT_DOUBLE_EQ(state.norm_gap(), 2.0);
  expect_norm_metrics_match(state);
}

TEST(BinStateCapacity, NormalizedMetricsStayExactUnderWeightedChurn) {
  rng::Engine gen(77);
  std::vector<std::uint32_t> caps(20);
  for (auto& c : caps) c = static_cast<std::uint32_t>(1 + rng::uniform_below(gen, 9));
  BinState state(caps);
  std::vector<std::uint32_t> mirror(caps.size(), 0);
  std::uint64_t balls = 0;
  for (int step = 0; step < 3000; ++step) {
    const bool add = balls == 0 || rng::bernoulli(gen, 0.6);
    const auto bin =
        static_cast<std::uint32_t>(rng::uniform_below(gen, caps.size()));
    if (add) {
      const auto w = static_cast<std::uint32_t>(1 + rng::uniform_below(gen, 5));
      state.add_ball(bin, w);
      mirror[bin] += w;
      balls += w;
    } else if (mirror[bin] > 0) {
      state.remove_ball(bin);
      --mirror[bin];
      --balls;
    }
    ASSERT_EQ(state.loads(), mirror);
    if (step % 83 == 0) {
      expect_metrics_match(state);
      expect_norm_metrics_match(state);
    }
  }
  expect_norm_metrics_match(state);
}

TEST(BinStateCapacity, SamplesProportionallyToCapacity) {
  BinState state(std::vector<std::uint32_t>{1, 3});
  rng::Engine gen(5);
  std::uint64_t hits1 = 0;
  const int draws = 40'000;
  for (int i = 0; i < draws; ++i) {
    hits1 += state.sample_capacity_proportional(gen) == 1 ? 1 : 0;
  }
  // P(bin 1) = 3/4; a 40k-draw binomial stays within ~1.5% w.h.p.
  EXPECT_NEAR(static_cast<double>(hits1) / draws, 0.75, 0.015);
}

// ---------------------------------------------------------------------------
// clear() == fresh construction
// ---------------------------------------------------------------------------

// Drive two states — one cleared after a messy history, one freshly built —
// through the same operation sequence and demand bit-identical behavior,
// including the nonempty-index departures that read nonempty_pos_.
void expect_clear_equals_fresh(BinState& used, BinState fresh) {
  used.clear();
  rng::Engine gen_a(99), gen_b(99);
  for (int step = 0; step < 800; ++step) {
    const bool add_draw = rng::bernoulli(gen_a, 0.5);
    (void)rng::bernoulli(gen_b, 0.5);  // keep the engines in lockstep
    const bool add = fresh.balls() == 0 || add_draw;
    if (add) {
      const auto bin =
          static_cast<std::uint32_t>(rng::uniform_below(gen_a, fresh.n()));
      const auto bin_b =
          static_cast<std::uint32_t>(rng::uniform_below(gen_b, fresh.n()));
      ASSERT_EQ(bin, bin_b);
      const auto w = static_cast<std::uint32_t>(1 + rng::uniform_below(gen_a, 4));
      (void)rng::uniform_below(gen_b, 4);
      used.add_ball(bin, w);
      fresh.add_ball(bin, w);
    } else {
      const std::uint32_t victim_a = used.sample_nonempty(gen_a);
      const std::uint32_t victim_b = fresh.sample_nonempty(gen_b);
      ASSERT_EQ(victim_a, victim_b);
      used.remove_ball(victim_a);
      fresh.remove_ball(victim_b);
    }
    ASSERT_EQ(used.loads(), fresh.loads());
    ASSERT_EQ(used.balls(), fresh.balls());
    ASSERT_EQ(used.max_load(), fresh.max_load());
    ASSERT_EQ(used.min_load(), fresh.min_load());
    ASSERT_EQ(used.nonempty_bins(), fresh.nonempty_bins());
    ASSERT_DOUBLE_EQ(used.psi(), fresh.psi());
  }
  EXPECT_DOUBLE_EQ(used.weighted_psi(), fresh.weighted_psi());
  EXPECT_DOUBLE_EQ(used.max_norm_load(), fresh.max_norm_load());
}

TEST(BinState, ClearedStateIndistinguishableFromFresh) {
  const std::uint32_t n = 16;
  BinState used(n);
  rng::Engine gen(31);
  for (int i = 0; i < 500; ++i) {
    used.add_ball(static_cast<std::uint32_t>(rng::uniform_below(gen, n)),
                  static_cast<std::uint32_t>(1 + rng::uniform_below(gen, 3)));
  }
  while (used.balls() > 40) used.remove_ball(used.sample_nonempty(gen));
  expect_clear_equals_fresh(used, BinState(n));
}

TEST(BinStateCapacity, ClearKeepsCapacitiesAndResetsLoads) {
  const std::vector<std::uint32_t> caps{1, 2, 4, 8, 1, 2, 4, 8};
  BinState used(caps);
  rng::Engine gen(41);
  for (int i = 0; i < 300; ++i) {
    used.add_ball(static_cast<std::uint32_t>(rng::uniform_below(gen, caps.size())));
  }
  expect_clear_equals_fresh(used, BinState(caps));
  EXPECT_EQ(used.capacities(), caps);
  EXPECT_EQ(used.total_capacity(), 30u);
}

}  // namespace
}  // namespace bbb::core
