/// Tests for the unified bin-load state: the LoadVector-style counting
/// API plus the O(1) incremental metrics, checked against the batch
/// recomputation in core/metrics.hpp.

#include "bbb/core/bin_state.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "bbb/core/metrics.hpp"

namespace bbb::core {
namespace {

// Recompute every incremental metric from the raw loads and compare. This
// is the core correctness property of BinState: no event sequence may
// drift the incremental values away from the batch definitions.
void expect_metrics_match(const BinState& state, double tol = 1e-9) {
  const auto& loads = state.loads();
  const LoadMetrics batch = compute_metrics(loads, state.balls());
  EXPECT_EQ(state.max_load(), batch.max);
  EXPECT_EQ(state.min_load(), batch.min);
  EXPECT_EQ(state.gap(), batch.gap);
  EXPECT_NEAR(state.psi(), batch.psi, tol * (1.0 + std::abs(batch.psi)));
  EXPECT_NEAR(state.log_phi(), batch.log_phi, tol * (1.0 + std::abs(batch.log_phi)));
  std::uint32_t nonempty = 0;
  for (const auto l : loads) nonempty += l > 0 ? 1 : 0;
  EXPECT_EQ(state.nonempty_bins(), nonempty);
}

TEST(BinState, RejectsZeroBins) {
  EXPECT_THROW(BinState(0), std::invalid_argument);
}

TEST(BinState, StartsEmpty) {
  BinState v(4);
  EXPECT_EQ(v.n(), 4u);
  EXPECT_EQ(v.balls(), 0u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(v.load(i), 0u);
  EXPECT_DOUBLE_EQ(v.average(), 0.0);
  EXPECT_EQ(v.max_load(), 0u);
  EXPECT_EQ(v.min_load(), 0u);
  EXPECT_EQ(v.nonempty_bins(), 0u);
  EXPECT_DOUBLE_EQ(v.psi(), 0.0);
  expect_metrics_match(v);
}

TEST(BinState, AddAndRemove) {
  BinState v(3);
  v.add_ball(1);
  v.add_ball(1);
  v.add_ball(2);
  EXPECT_EQ(v.balls(), 3u);
  EXPECT_EQ(v.load(0), 0u);
  EXPECT_EQ(v.load(1), 2u);
  EXPECT_EQ(v.load(2), 1u);
  EXPECT_DOUBLE_EQ(v.average(), 1.0);
  expect_metrics_match(v);
  v.remove_ball(1);
  EXPECT_EQ(v.balls(), 2u);
  EXPECT_EQ(v.load(1), 1u);
  expect_metrics_match(v);
}

TEST(BinState, ClearResetsEverything) {
  BinState v(2);
  v.add_ball(0);
  v.add_ball(0);
  v.add_ball(1);
  v.clear();
  EXPECT_EQ(v.balls(), 0u);
  EXPECT_EQ(v.load(0), 0u);
  EXPECT_EQ(v.load(1), 0u);
  EXPECT_EQ(v.max_load(), 0u);
  EXPECT_EQ(v.min_load(), 0u);
  EXPECT_EQ(v.nonempty_bins(), 0u);
  EXPECT_DOUBLE_EQ(v.psi(), 0.0);
  expect_metrics_match(v);
  // The cleared state is fully usable again.
  v.add_ball(1);
  EXPECT_EQ(v.max_load(), 1u);
  expect_metrics_match(v);
}

TEST(BinState, LoadsViewMatchesState) {
  BinState v(3);
  v.add_ball(2);
  v.add_ball(2);
  const auto& loads = v.loads();
  EXPECT_EQ(loads, (std::vector<std::uint32_t>{0, 0, 2}));
}

TEST(BinState, MetricsStayExactUnderRandomChurn) {
  const std::uint32_t n = 32;
  BinState state(n);
  rng::Engine gen(123);
  std::vector<std::uint32_t> mirror(n, 0);
  std::uint64_t balls = 0;
  for (int step = 0; step < 5000; ++step) {
    const bool add = balls == 0 || rng::bernoulli(gen, 0.55);
    if (add) {
      const auto bin = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
      state.add_ball(bin);
      ++mirror[bin];
      ++balls;
    } else {
      const std::uint32_t bin = state.sample_nonempty(gen);
      state.remove_ball(bin);
      --mirror[bin];
      --balls;
    }
    ASSERT_EQ(state.balls(), balls);
    ASSERT_EQ(state.loads(), mirror);
    if (step % 97 == 0) expect_metrics_match(state);
  }
  expect_metrics_match(state);
}

TEST(BinState, TailCountsMatchScan) {
  BinState state(8);
  rng::Engine gen(7);
  for (int i = 0; i < 40; ++i) {
    state.add_ball(static_cast<std::uint32_t>(rng::uniform_below(gen, 8)));
  }
  for (std::uint32_t k = 0; k <= state.max_load() + 2; ++k) {
    std::uint32_t scan = 0;
    for (const auto l : state.loads()) scan += l >= k ? 1 : 0;
    EXPECT_EQ(state.bins_with_load_at_least(k), scan) << "k=" << k;
  }
}

TEST(BinState, RemoveFromEmptyBinThrows) {
  BinState state(4);
  EXPECT_THROW(state.remove_ball(0), std::invalid_argument);
  state.add_ball(1);
  EXPECT_THROW(state.remove_ball(0), std::invalid_argument);
  state.remove_ball(1);
  EXPECT_EQ(state.balls(), 0u);
}

TEST(BinState, SampleNonemptyRequiresABall) {
  BinState state(4);
  rng::Engine gen(1);
  EXPECT_THROW((void)state.sample_nonempty(gen), std::logic_error);
  state.add_ball(2);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(state.sample_nonempty(gen), 2u);
}

}  // namespace
}  // namespace bbb::core
