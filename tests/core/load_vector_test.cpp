#include "bbb/core/load_vector.hpp"

#include <gtest/gtest.h>

namespace bbb::core {
namespace {

TEST(LoadVector, RejectsZeroBins) {
  EXPECT_THROW(LoadVector(0), std::invalid_argument);
}

TEST(LoadVector, StartsEmpty) {
  LoadVector v(4);
  EXPECT_EQ(v.n(), 4u);
  EXPECT_EQ(v.balls(), 0u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(v.load(i), 0u);
  EXPECT_DOUBLE_EQ(v.average(), 0.0);
}

TEST(LoadVector, AddAndRemove) {
  LoadVector v(3);
  v.add_ball(1);
  v.add_ball(1);
  v.add_ball(2);
  EXPECT_EQ(v.balls(), 3u);
  EXPECT_EQ(v.load(0), 0u);
  EXPECT_EQ(v.load(1), 2u);
  EXPECT_EQ(v.load(2), 1u);
  EXPECT_DOUBLE_EQ(v.average(), 1.0);
  v.remove_ball(1);
  EXPECT_EQ(v.balls(), 2u);
  EXPECT_EQ(v.load(1), 1u);
}

TEST(LoadVector, ClearResets) {
  LoadVector v(2);
  v.add_ball(0);
  v.add_ball(1);
  v.clear();
  EXPECT_EQ(v.balls(), 0u);
  EXPECT_EQ(v.load(0), 0u);
  EXPECT_EQ(v.load(1), 0u);
}

TEST(LoadVector, LoadsViewMatchesState) {
  LoadVector v(3);
  v.add_ball(2);
  v.add_ball(2);
  const auto& loads = v.loads();
  EXPECT_EQ(loads, (std::vector<std::uint32_t>{0, 0, 2}));
}

}  // namespace
}  // namespace bbb::core
