#include "bbb/par/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "bbb/par/parallel_for.hpp"

namespace bbb::par {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(4), 4u);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversExactRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&](std::uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::uint64_t) { ++calls; });
  parallel_for(pool, 7, 3, [&](std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 10,
                            [](std::uint64_t i) {
                              if (i == 3) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, MoreItemsThanThreads) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  parallel_for(pool, 1, 101,
               [&](std::uint64_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(), 5050u);
}

TEST(ParallelMap, ResultsInIndexOrder) {
  ThreadPool pool(4);
  const auto out = parallel_map<std::uint64_t>(
      pool, 64, [](std::uint64_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, SingleThreadPoolMatchesMultiThread) {
  ThreadPool p1(1), p4(4);
  const auto f = [](std::uint64_t i) { return 3 * i + 1; };
  EXPECT_EQ(parallel_map<std::uint64_t>(p1, 200, f),
            parallel_map<std::uint64_t>(p4, 200, f));
}

}  // namespace
}  // namespace bbb::par
