/// ThreadSanitizer stress suite for the parallel layer (`ctest -L tsan`).
///
/// These tests exist to be run under `BBB_TSAN=ON` (Debug +
/// -fsanitize=thread): they drive the pool through the interleavings a
/// race detector needs to see — concurrent external submitters, shutdown
/// with a loaded queue, wait_idle spinning beside running tasks, and the
/// parallel_for error path where every block throws at once. They also
/// pass (fast) in ordinary builds, so they live in the tier-1 suite too.
///
/// TSan audit result for this layer (PR 9): `ThreadPool`,
/// `parallel_for`, and `parallel_map` came back CLEAN — every shared
/// field (queue_, in_flight_, stopping_) is mutex-guarded and the
/// first_error slot is guarded by its own mutex. The one race the audit
/// found in the wider concurrent surface was in the obs layer
/// (TraceSink::records_written reading seq_ unlocked beside the locked
/// writer increment — fixed by making seq_ atomic; regression lives in
/// tests/obs/obs_stress_test.cpp).

#include "bbb/par/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bbb/par/parallel_for.hpp"

namespace bbb::par {
namespace {

// Many external threads hammer submit() while the workers drain: the
// queue push, the in_flight_ bookkeeping, and cv signalling all cross
// thread boundaries here.
TEST(ThreadPoolTsanStress, ConcurrentSubmittersAllTasksRun) {
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 500;
  ThreadPool pool(4);
  std::atomic<int> executed{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &executed] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
}

// Destruction with a still-loaded queue: the documented contract is
// "drains outstanding tasks, then joins". The stopping_ flag, the final
// queue drain, and the join handshake are the shutdown-race surface.
TEST(ThreadPoolTsanStress, ShutdownDrainsLoadedQueue) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> executed{0};
    {
      ThreadPool pool(3);
      for (int i = 0; i < 200; ++i) {
        pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
      // No wait_idle: the destructor must drain the backlog itself.
    }
    EXPECT_EQ(executed.load(), 200);
  }
}

// Rapid construct/submit/destruct cycles: worker thread start-up racing
// the first submit, and tear-down racing the last completion.
TEST(ThreadPoolTsanStress, PoolLifetimeChurn) {
  std::atomic<int> executed{0};
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(2);
    pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
    pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(executed.load(), 100);
}

// Several threads block in wait_idle() while tasks are still being fed
// in from another: cv_idle_ signalling must wake every waiter exactly
// when queue and in-flight both reach zero.
TEST(ThreadPoolTsanStress, ConcurrentWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
  }
  std::vector<std::thread> waiters;
  waiters.reserve(4);
  for (int w = 0; w < 4; ++w) {
    waiters.emplace_back([&pool] { pool.wait_idle(); });
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(executed.load(), 1000);
}

// Every block throws at once: the first_error slot is written under its
// mutex from all worker threads "simultaneously", and exactly one
// exception must surface after the barrier.
TEST(ParallelForTsanStress, AllBlocksThrowConcurrently) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW(
        parallel_for(pool, 0, 64,
                     [](std::uint64_t i) {
                       throw std::runtime_error("block " + std::to_string(i));
                     }),
        std::runtime_error);
    // The pool must still be fully usable after an exception round.
    std::atomic<int> ok{0};
    parallel_for(pool, 0, 8,
                 [&ok](std::uint64_t) { ok.fetch_add(1, std::memory_order_relaxed); });
    EXPECT_EQ(ok.load(), 8);
  }
}

// Mixed success/failure: some blocks throw while neighbours keep writing
// their disjoint results — the failure path must not tear the shared
// error slot or the survivors' writes.
TEST(ParallelForTsanStress, PartialFailureLeavesSurvivorWritesIntact) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> results(256, 0);
  try {
    parallel_for(pool, 0, 256, [&results](std::uint64_t i) {
      if (i % 67 == 3) throw std::runtime_error("sparse failure");
      results[i] = i + 1;
    });
    FAIL() << "expected the sparse failures to propagate";
  } catch (const std::runtime_error&) {
  }
  // Every index outside a throwing block's failing element is either
  // untouched (0) or fully written (i + 1) — never a torn value.
  for (std::uint64_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i] == 0 || results[i] == i + 1) << "index " << i;
  }
}

// parallel_map's results vector is written element-wise from all workers
// and read after the barrier: the classic false-sharing-adjacent pattern
// TSan must see as properly synchronized (wait_idle is the barrier).
TEST(ParallelForTsanStress, ParallelMapBarrierPublishesAllWrites) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    const auto out = parallel_map<std::uint64_t>(
        pool, 512, [](std::uint64_t i) { return i * 3 + 1; });
    ASSERT_EQ(out.size(), 512u);
    for (std::uint64_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 3 + 1);
  }
}

}  // namespace
}  // namespace bbb::par
