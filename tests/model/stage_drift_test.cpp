#include "bbb/model/stage_drift.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "bbb/core/metrics.hpp"
#include "bbb/rng/distributions.hpp"

namespace bbb::model {
namespace {

TEST(StageDrift, Validation) {
  rng::Engine gen(1);
  EXPECT_THROW((void)adaptive_stage_records(0, 4, gen), std::invalid_argument);
  EXPECT_THROW((void)adaptive_stage_records(8, 0, gen), std::invalid_argument);
}

TEST(StageDrift, OneRecordPerStage) {
  rng::Engine gen(2);
  const auto recs = adaptive_stage_records(128, 10, gen);
  ASSERT_EQ(recs.size(), 10u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].stage, i + 1);
    EXPECT_GT(recs[i].phi_before, 0.0);
    EXPECT_GT(recs[i].phi_after, 0.0);
    EXPECT_GE(recs[i].probes, 128u);  // n balls need >= n probes
  }
}

TEST(StageDrift, PhiStaysLinearInN) {
  // Corollary 3.5 at stage granularity: Phi never blows past O(n). Allow a
  // generous constant (the proof's rho-region is ~ (eps+kappa)/(kappa/2) n).
  rng::Engine gen(3);
  constexpr std::uint32_t n = 1 << 12;
  const auto recs = adaptive_stage_records(n, 24, gen);
  for (const auto& r : recs) {
    EXPECT_LT(r.phi_after, 16.0 * n) << "stage " << r.stage;
  }
}

TEST(StageDrift, DriftIsBoundedByOnePlusEps) {
  // Phi(L^{tau+1}) <= (1+eps) Phi(L^tau) holds deterministically (Section 3):
  // loads only grow, and re-centering costs at most the (1+eps) factor.
  rng::Engine gen(4);
  const auto recs = adaptive_stage_records(512, 16, gen);
  for (const auto& r : recs) {
    EXPECT_LE(r.drift, 1.0 + core::kPotentialEpsilon + 1e-9) << "stage " << r.stage;
  }
}

// Lemma 3.2: underloaded bins receive stochastically at least
// Poi(199/198) - 2e-10 balls in the next stage. Empirically their mean
// arrivals must clear 1 (the Poisson mean is 199/198 ~ 1.005).
TEST(StageDrift, UnderloadedBinsCatchUp) {
  rng::Engine gen(5);
  constexpr std::uint32_t n = 1 << 12;
  const auto recs = adaptive_stage_records(n, 32, gen, /*deep_hole=*/4);
  double weighted_mean = 0.0;
  std::uint64_t total_bins = 0;
  for (const auto& r : recs) {
    weighted_mean += r.mean_arrivals_deep * static_cast<double>(r.underloaded);
    total_bins += r.underloaded;
  }
  ASSERT_GT(total_bins, 50u) << "not enough underloaded bins to measure";
  weighted_mean /= static_cast<double>(total_bins);
  EXPECT_GT(weighted_mean, 1.0);
}

TEST(StageDrift, ArrivalHistogramDominatesPoissonTail) {
  // Pr[Y >= k] >= Pr[Poi(199/198) >= k] - 2e-10 for k <= C1 (Lemma 3.2).
  // Check the first few k with sampling slack.
  rng::Engine gen(6);
  constexpr std::uint32_t n = 1 << 12;
  const auto counts = underloaded_arrival_histogram(n, 32, gen, 4, 16);
  const std::uint64_t total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  ASSERT_GT(total, 200u);
  const rng::PoissonDist poi(199.0 / 198.0);
  double emp_tail = 1.0;
  double poi_tail = 1.0;
  for (std::uint32_t k = 1; k <= 3; ++k) {
    emp_tail -= static_cast<double>(counts[k - 1]) / static_cast<double>(total);
    poi_tail -= poi.pmf(k - 1);
    const double slack = 4.0 / std::sqrt(static_cast<double>(total));
    EXPECT_GE(emp_tail, poi_tail - slack) << "k=" << k;
  }
}

}  // namespace
}  // namespace bbb::model
