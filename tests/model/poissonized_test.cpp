#include "bbb/model/poissonized.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "bbb/core/metrics.hpp"

namespace bbb::model {
namespace {

TEST(Poissonized, ExactLoadsConserveBalls) {
  rng::Engine gen(1);
  const auto loads = exact_loads(1000, 64, gen);
  ASSERT_EQ(loads.size(), 64u);
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}), 1000u);
}

TEST(Poissonized, PoissonLoadsHaveRightMean) {
  rng::Engine gen(2);
  double total = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    const auto loads = poissonized_loads(5.0, 256, gen);
    total += std::accumulate(loads.begin(), loads.end(), 0.0);
  }
  EXPECT_NEAR(total / (kTrials * 256.0), 5.0, 0.1);
}

TEST(Poissonized, TruncateCapsEveryEntry) {
  const std::vector<std::uint32_t> access{0, 3, 7, 10, 2};
  const auto trunc = truncate_loads(access, 5);
  EXPECT_EQ(trunc, (std::vector<std::uint32_t>{0, 3, 5, 5, 2}));
}

TEST(Poissonized, EstimatorsReturnProbabilities) {
  rng::Engine gen(3);
  const auto event = [](const std::vector<std::uint32_t>& loads) {
    return core::max_load(loads) >= 3;
  };
  const double pe = estimate_exact_probability(256, 256, 200, gen, event);
  const double pp = estimate_poisson_probability(256, 256, 200, gen, event);
  EXPECT_GE(pe, 0.0);
  EXPECT_LE(pe, 1.0);
  EXPECT_GE(pp, 0.0);
  EXPECT_LE(pp, 1.0);
}

// Lemma A.7(2): for events increasing in the number of balls (here:
// max load >= k), Pr_exact[A] <= 4 * Pr_poisson[A]. Checked at several
// thresholds with enough trials that sampling noise cannot flip the factor.
class LemmaA7Test : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LemmaA7Test, IncreasingEventTransfer) {
  const std::uint32_t k = GetParam();
  rng::Engine gen(100 + k);
  constexpr std::uint32_t kN = 128;
  constexpr std::uint32_t kTrials = 3000;
  const auto event = [k](const std::vector<std::uint32_t>& loads) {
    return core::max_load(loads) >= k;
  };
  const double pe = estimate_exact_probability(kN, kN, kTrials, gen, event);
  const double pp = estimate_poisson_probability(kN, kN, kTrials, gen, event);
  // Allow 3-sigma slack on both estimates.
  const double slack = 3.0 * std::sqrt(0.25 / kTrials);
  EXPECT_LE(pe - slack, 4.0 * (pp + slack)) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(MaxLoadThresholds, LemmaA7Test, ::testing::Values(3u, 4u, 5u));

// In the Poisson model the loads are independent, so the exact and Poisson
// max-load distributions must be close — KS on the max statistic (they are
// not identical, but at m = n the asymptotic distributions coincide).
TEST(Poissonized, MaxLoadDistributionsAgreeRoughly) {
  rng::Engine gen(7);
  constexpr std::uint32_t kN = 512;
  constexpr int kTrials = 400;
  double mean_exact = 0, mean_poisson = 0;
  for (int t = 0; t < kTrials; ++t) {
    mean_exact += core::max_load(exact_loads(kN, kN, gen));
    mean_poisson += core::max_load(poissonized_loads(1.0, kN, gen));
  }
  mean_exact /= kTrials;
  mean_poisson /= kTrials;
  EXPECT_NEAR(mean_exact, mean_poisson, 0.35);
}

}  // namespace
}  // namespace bbb::model
