#include "bbb/model/choice_vector.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "bbb/core/protocols/threshold.hpp"

namespace bbb::model {
namespace {

TEST(ChoiceVector, Validation) {
  EXPECT_THROW(ChoiceVector(0, 1), std::invalid_argument);
  EXPECT_THROW(ChoiceVector(4, 1, 0), std::invalid_argument);
}

TEST(ChoiceVector, EntriesAreStableUnderRandomAccess) {
  ChoiceVector c(100, 42);
  const std::uint32_t e5 = c.at(5);
  const std::uint32_t e9999 = c.at(9999);  // forces many refills
  EXPECT_EQ(c.at(5), e5);
  EXPECT_EQ(c.at(9999), e9999);
}

TEST(ChoiceVector, EntriesWithinRange) {
  ChoiceVector c(7, 3);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(c.next(), 7u);
}

TEST(ChoiceVector, RewindReplaysIdentically) {
  ChoiceVector c(64, 9);
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 500; ++i) first.push_back(c.next());
  c.rewind();
  for (int i = 0; i < 500; ++i) EXPECT_EQ(c.next(), first[i]);
}

TEST(ChoiceVector, ConsumedTracksNextCalls) {
  ChoiceVector c(8, 1);
  EXPECT_EQ(c.consumed(), 0u);
  (void)c.next();
  (void)c.next();
  EXPECT_EQ(c.consumed(), 2u);
  c.rewind();
  EXPECT_EQ(c.consumed(), 0u);
}

// The proof-model equivalence: threshold driven by a pre-drawn ChoiceVector
// is bit-identical to threshold driven by the engine directly with the same
// seed (the vector *is* the engine's output stream).
TEST(ChoiceVector, ThresholdOnChoicesMatchesDirectRun) {
  constexpr std::uint32_t n = 128;
  constexpr std::uint64_t m = 1000;
  constexpr std::uint64_t seed = 77;

  ChoiceVector choices(n, seed);
  const auto loads_via_vector = run_threshold_on_choices(m, choices);

  rng::Engine gen(seed);
  const auto direct = core::ThresholdProtocol{}.run(m, n, gen);

  EXPECT_EQ(loads_via_vector, direct.loads);
  EXPECT_EQ(choices.consumed(), direct.probes);
}

TEST(ChoiceVector, ThresholdPlacesAllBalls) {
  ChoiceVector choices(32, 5);
  const auto loads = run_threshold_on_choices(500, choices);
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}), 500u);
}

TEST(ChoiceVector, ZeroBallsConsumesNothing) {
  ChoiceVector choices(32, 5);
  const auto loads = run_threshold_on_choices(0, choices);
  EXPECT_EQ(choices.consumed(), 0u);
  for (auto l : loads) EXPECT_EQ(l, 0u);
}

}  // namespace
}  // namespace bbb::model
