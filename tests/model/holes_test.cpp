#include "bbb/model/holes.hpp"

#include <gtest/gtest.h>

namespace bbb::model {
namespace {

TEST(Holes, Validation) {
  ChoiceVector c(8, 1);
  EXPECT_THROW((void)holes_trajectory(0, c, 10), std::invalid_argument);
  EXPECT_THROW((void)theorem41_probe_budget(10, 0), std::invalid_argument);
}

TEST(Holes, StartsAtCapTimesNAndEndsBelowN) {
  constexpr std::uint32_t n = 64;
  constexpr std::uint64_t m = 8 * n;
  ChoiceVector c(n, 3);
  const auto traj = holes_trajectory(m, c, 1);
  ASSERT_FALSE(traj.empty());
  // First processed entry: either a placement (holes = cap*n - 1) or not.
  const std::uint32_t cap = 8 + 1;
  EXPECT_LE(traj.front().holes, static_cast<std::uint64_t>(cap) * n);
  // Endgame identity: holes = cap*n - m = n when all m are placed.
  EXPECT_EQ(traj.back().placed, m);
  EXPECT_EQ(traj.back().holes, static_cast<std::uint64_t>(cap) * n - m);
  EXPECT_EQ(traj.back().holes, n);  // m divisible by n
}

TEST(Holes, HolesAreMonotoneNonincreasing) {
  ChoiceVector c(32, 4);
  const auto traj = holes_trajectory(320, c, 7);
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_LE(traj[i].holes, traj[i - 1].holes);
    EXPECT_GE(traj[i].placed, traj[i - 1].placed);
    EXPECT_GT(traj[i].t, traj[i - 1].t);
  }
}

TEST(Holes, PlacedPlusHolesIsInvariant) {
  constexpr std::uint32_t n = 16;
  constexpr std::uint64_t m = 100;
  ChoiceVector c(n, 5);
  const std::uint32_t cap = (100 + 15) / 16 + 1;  // ceil + 1 = 8
  const auto traj = holes_trajectory(m, c, 3);
  for (const auto& p : traj) {
    EXPECT_EQ(p.placed + p.holes, static_cast<std::uint64_t>(cap) * n);
  }
}

TEST(Holes, Theorem41BudgetForm) {
  // phi = 16, n = 1024: budget = (16 + 16^0.75 + 1) * 1024 = (17 + 8) * 1024.
  EXPECT_EQ(theorem41_probe_budget(16 * 1024, 1024), (17 + 8) * 1024u);
  // Budget is always more than m.
  EXPECT_GT(theorem41_probe_budget(500, 100), 500u);
}

TEST(Holes, FinishesWithinTheorem41BudgetTypically) {
  // The w.h.p. statement at a comfortable size: a single run with a fixed
  // seed must finish within the budget (failure probability O(n^-2)).
  constexpr std::uint32_t n = 1 << 10;
  constexpr std::uint64_t m = 64ULL * n;
  ChoiceVector c(n, 13);
  const auto traj = holes_trajectory(m, c, 1ULL << 20);
  EXPECT_LE(traj.back().t, theorem41_probe_budget(m, n));
}

}  // namespace
}  // namespace bbb::model
