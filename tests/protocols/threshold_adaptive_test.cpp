/// Paper-specific properties of the two core protocols:
///   * the max-load guarantee ceil(m/n) + 1 (both, by construction)
///   * the integer acceptance rule == the paper's real-valued rule
///   * adaptive's bound evolves as ceil(i/n), threshold's is fixed
///   * slack-0 variants achieve the perfectly tight bound ceil(m/n)
///   * allocation-time behaviour (statistical, generous margins)

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/core/protocols/threshold.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/theory/bounds.hpp"

namespace bbb::core {
namespace {

// ----------------------------------------------------- integer-rule identity

// The paper's rule for ball i: accept bin with load < i/n + 1 (reals).
// Our hot loop: accept iff load <= ceil(i/n). Verify equivalence exhaustively
// over a grid of (i, n, load).
TEST(IntegerRule, MatchesRealValuedDefinition) {
  for (std::uint32_t n : {1u, 2u, 3u, 7u, 64u, 1000u}) {
    for (std::uint64_t i = 1; i <= 3ULL * n + 2; ++i) {
      const auto bound = static_cast<std::uint32_t>(ceil_div(i, n));
      for (std::uint32_t load = 0; load <= bound + 2; ++load) {
        const bool real_rule =
            static_cast<double>(load) < static_cast<double>(i) / n + 1.0;
        const bool int_rule = load <= bound;
        ASSERT_EQ(real_rule, int_rule) << "i=" << i << " n=" << n << " load=" << load;
      }
    }
  }
}

TEST(IntegerRule, CeilDivKnownValues) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
  EXPECT_EQ(ceil_div(10, 1), 10u);
}

// ------------------------------------------------------- max-load guarantee

struct Shape {
  std::uint64_t m;
  std::uint32_t n;
  std::uint64_t seed;
};

void PrintTo(const Shape& s, std::ostream* os) {
  *os << "m=" << s.m << ",n=" << s.n << ",seed=" << s.seed;
}

class MaxLoadGuaranteeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(MaxLoadGuaranteeTest, AdaptiveNeverExceedsCeilPlusOne) {
  const auto& [m, n, seed] = GetParam();
  rng::Engine gen(seed);
  const AllocationResult res = AdaptiveProtocol{}.run(m, n, gen);
  EXPECT_LE(max_load(res.loads), ceil_div(m, n) + 1);
}

TEST_P(MaxLoadGuaranteeTest, ThresholdNeverExceedsCeilPlusOne) {
  const auto& [m, n, seed] = GetParam();
  rng::Engine gen(seed);
  const AllocationResult res = ThresholdProtocol{}.run(m, n, gen);
  EXPECT_LE(max_load(res.loads), ceil_div(m, n) + 1);
}

TEST_P(MaxLoadGuaranteeTest, SlackZeroAchievesPerfectBound) {
  const auto& [m, n, seed] = GetParam();
  if (m == 0) GTEST_SKIP();
  rng::Engine gen(seed);
  const AllocationResult res = AdaptiveProtocol{0}.run(m, n, gen);
  EXPECT_EQ(max_load(res.loads), ceil_div(m, n));
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, MaxLoadGuaranteeTest,
    ::testing::Values(Shape{1, 1, 1}, Shape{100, 10, 2}, Shape{101, 10, 3},
                      Shape{999, 10, 4}, Shape{1000, 1000, 5}, Shape{5000, 64, 6},
                      Shape{64, 4096, 7}, Shape{12345, 67, 8}, Shape{4096, 17, 9},
                      Shape{100000, 100, 10}));

// -------------------------------------------------------- adaptive mechanics

TEST(Adaptive, BoundStartsAtSlackAndBumpsPerStage) {
  BinState state(4);
  AdaptiveRule rule(1);
  rng::Engine gen(3);
  EXPECT_EQ(rule.accept_bound(state), 1u);  // balls 1..4: ceil(i/4) = 1
  for (int i = 0; i < 4; ++i) rule.place_one(state, gen);
  EXPECT_EQ(rule.accept_bound(state), 2u);  // balls 5..8: ceil(i/4) = 2
  for (int i = 0; i < 4; ++i) rule.place_one(state, gen);
  EXPECT_EQ(rule.accept_bound(state), 3u);
}

TEST(Adaptive, EveryPrefixRespectsItsOwnBound) {
  // Strictly stronger than the final-load test: after every single ball i,
  // no bin may exceed ceil(i/n) + 1.
  constexpr std::uint32_t n = 16;
  BinState state(n);
  AdaptiveRule rule(1);
  rng::Engine gen(11);
  for (std::uint64_t i = 1; i <= 20 * n; ++i) {
    rule.place_one(state, gen);
    const auto cap = static_cast<std::uint32_t>(ceil_div(i, n) + 1);
    for (std::uint32_t b = 0; b < n; ++b) {
      ASSERT_LE(state.load(b), cap) << "after ball " << i;
    }
  }
}

TEST(Adaptive, StreamingMatchesBatchProtocol) {
  constexpr std::uint32_t n = 32;
  constexpr std::uint64_t m = 500;
  rng::Engine g1(21), g2(21);
  BinState state(n);
  AdaptiveRule rule(1);
  for (std::uint64_t i = 0; i < m; ++i) rule.place_one(state, g1);
  const AllocationResult batch = AdaptiveProtocol{1}.run(m, n, g2);
  EXPECT_EQ(state.loads(), batch.loads);
  EXPECT_EQ(rule.probes(), batch.probes);
}

TEST(Adaptive, RejectsZeroBins) {
  // The shared BinState owns the n > 0 invariant for every rule.
  EXPECT_THROW(BinState(0), std::invalid_argument);
  rng::Engine gen(1);
  EXPECT_THROW((void)AdaptiveProtocol{}.run(10, 0, gen), std::invalid_argument);
}

// ------------------------------------------------------- threshold mechanics

TEST(Threshold, AcceptBoundIsCeilOfAverage) {
  ThresholdRule a(10, 100);
  EXPECT_EQ(a.accept_bound(), 10u);
  ThresholdRule b(10, 101);
  EXPECT_EQ(b.accept_bound(), 11u);
  ThresholdRule c(10, 100, 2);
  EXPECT_EQ(c.accept_bound(), 11u);
  ThresholdRule d(10, 100, 0);
  EXPECT_EQ(d.accept_bound(), 9u);
}

TEST(Threshold, DeadlockedBoundThrowsInsteadOfSpinning) {
  // slack 0 over m = n accepts only empty bins: once every bin holds a
  // ball the fixed bound can never admit another, and the rule reports
  // the deadlock in O(1) rather than probing forever.
  BinState state(2);
  ThresholdRule rule(2, 2, 0);
  rng::Engine gen(5);
  rule.place_one(state, gen);
  rule.place_one(state, gen);
  EXPECT_EQ(state.max_load(), 1u);
  EXPECT_THROW(rule.place_one(state, gen), std::logic_error);
  // A departure re-opens capacity (the dynamic reading of the bound).
  state.remove_ball(0);
  EXPECT_NO_THROW(rule.place_one(state, gen));
}

TEST(Threshold, SlackZeroRejectedOnlyForZeroM) {
  EXPECT_THROW(ThresholdRule(4, 0, 0), std::invalid_argument);
  EXPECT_NO_THROW(ThresholdRule(4, 4, 0));
}

TEST(Threshold, SlackZeroGivesPerfectlyFlatLoad) {
  constexpr std::uint32_t n = 64;
  constexpr std::uint64_t m = 4 * n;
  rng::Engine gen(9);
  const AllocationResult res = ThresholdProtocol{0}.run(m, n, gen);
  for (std::uint32_t l : res.loads) EXPECT_EQ(l, 4u);
}

// -------------------------------------------------- allocation-time behaviour

TEST(AllocationTime, ThresholdCloseToM) {
  // Theorem 4.1: probes = m + O(m^{3/4} n^{1/4}). With m = 64n the overhead
  // is a few percent; allow a generous factor 8 on the scale term.
  constexpr std::uint32_t n = 1 << 10;
  constexpr std::uint64_t m = 64ULL * n;
  rng::Engine gen(13);
  const AllocationResult res = ThresholdProtocol{}.run(m, n, gen);
  EXPECT_GE(res.probes, m);
  const double overhead = static_cast<double>(res.probes - m);
  EXPECT_LE(overhead, 8.0 * theory::threshold_overhead_scale(m, n))
      << "probes=" << res.probes;
}

TEST(AllocationTime, AdaptiveLinearInM) {
  // Theorem 3.1: E[T] = O(m). Empirically probes/m is a small constant
  // (~2.1 at phi = 16); assert a loose ceiling of 8.
  constexpr std::uint32_t n = 1 << 10;
  constexpr std::uint64_t m = 16ULL * n;
  rng::Engine gen(14);
  const AllocationResult res = AdaptiveProtocol{}.run(m, n, gen);
  const double per_ball = static_cast<double>(res.probes) / static_cast<double>(m);
  EXPECT_GE(per_ball, 1.0);
  EXPECT_LE(per_ball, 8.0);
}

TEST(AllocationTime, SlackZeroAdaptivePaysCouponCollector) {
  // With slack 0 each stage is a coupon collector: Theta(n log n) per stage,
  // i.e. probes/m = Theta(log n) rather than O(1).
  constexpr std::uint32_t n = 1 << 10;
  constexpr std::uint64_t m = 8ULL * n;
  rng::Engine gen(15);
  const AllocationResult tight = AdaptiveProtocol{0}.run(m, n, gen);
  const double per_ball = static_cast<double>(tight.probes) / static_cast<double>(m);
  // H_n ~ ln(1024) ~ 6.9; the per-stage cost is ~ n*H_n / n. Allow wide band.
  EXPECT_GE(per_ball, 3.0);
  EXPECT_LE(per_ball, 14.0);
}

// ----------------------------------------------------------- smoothness gap

TEST(Smoothness, AdaptiveGapIsLogarithmic) {
  // Corollary 3.5: gap = O(log n) w.h.p. Allow constant 6 over ln n + slack.
  constexpr std::uint32_t n = 1 << 12;
  constexpr std::uint64_t m = 32ULL * n;
  rng::Engine gen(16);
  const AllocationResult res = AdaptiveProtocol{}.run(m, n, gen);
  const double gap = load_gap(res.loads);
  EXPECT_LE(gap, 6.0 * std::log(static_cast<double>(n)) + 4.0);
}

TEST(Smoothness, ThresholdGapGrowsWithHeavyLoad) {
  // Lemma 4.2 regime (m = n^2 scaled down): threshold leaves deep holes, so
  // its gap must clearly exceed adaptive's on the same instance size.
  constexpr std::uint32_t n = 256;
  constexpr std::uint64_t m = static_cast<std::uint64_t>(n) * n;
  rng::Engine g1(17), g2(17);
  const AllocationResult th = ThresholdProtocol{}.run(m, n, g1);
  const AllocationResult ad = AdaptiveProtocol{}.run(m, n, g2);
  EXPECT_GT(load_gap(th.loads), 2 * load_gap(ad.loads));
}

}  // namespace
}  // namespace bbb::core
