/// Bit-for-bit placement pins for every protocol family in the registry.
///
/// tools/bbb_lint.py (rule `golden-pin-coverage`) enforces that each
/// family named in core/protocols/registry.cpp appears in a GoldenPins
/// suite — this file is that coverage. Like tests/rng/golden_test.cpp,
/// the values are *pins*, not external vectors: they were captured from
/// this implementation (seed 42, m = 100, n = 10, except cuckoo) and
/// exist so a refactor that silently reorders draws or changes a
/// tie-break is caught as a diff here instead of as drift in recorded
/// experiments. Protocol-level invariants (bounds, conservation) live in
/// invariants_test.cpp; these tests check only exact equality.
///
/// If a pin changes *intentionally* (a protocol's draw order is
/// redefined), update the value in the same PR and call the break out in
/// EXPERIMENTS.md — every recorded run with that spec is invalidated.

#include "bbb/core/protocols/registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bbb/rng/streams.hpp"

namespace bbb::core {
namespace {

struct Pin {
  std::uint64_t balls = 0;
  std::uint64_t probes = 0;
  std::uint64_t reallocations = 0;
  std::uint64_t rounds = 0;
};

AllocationResult run_pinned(const std::string& spec, std::uint64_t m = 100,
                            std::uint32_t n = 10) {
  rng::Engine gen(42);
  const auto result = make_protocol(spec)->run(m, n, gen);
  EXPECT_TRUE(result.completed) << spec;
  return result;
}

void expect_pin(const AllocationResult& r, const std::vector<std::uint32_t>& loads,
                const Pin& pin) {
  EXPECT_EQ(r.loads, loads);
  EXPECT_EQ(r.balls, pin.balls);
  EXPECT_EQ(r.probes, pin.probes);
  EXPECT_EQ(r.reallocations, pin.reallocations);
  EXPECT_EQ(r.rounds, pin.rounds);
}

TEST(RegistryGoldenPins, OneChoice) {
  expect_pin(run_pinned("one-choice"), {9, 12, 9, 5, 9, 11, 13, 11, 11, 10},
             {.balls = 100, .probes = 100});
}

TEST(RegistryGoldenPins, GreedyD2) {
  expect_pin(run_pinned("greedy[2]"), {10, 10, 9, 10, 10, 11, 11, 10, 10, 9},
             {.balls = 100, .probes = 200});
}

TEST(RegistryGoldenPins, LeftD2) {
  expect_pin(run_pinned("left[2]"), {10, 10, 10, 10, 11, 10, 10, 10, 10, 9},
             {.balls = 100, .probes = 200});
}

TEST(RegistryGoldenPins, MemoryD2K1) {
  expect_pin(run_pinned("memory[2,1]"), {10, 11, 10, 10, 9, 10, 10, 10, 10, 10},
             {.balls = 100, .probes = 200});
}

TEST(RegistryGoldenPins, ThresholdDefaultSlack) {
  expect_pin(run_pinned("threshold"), {10, 11, 10, 6, 9, 11, 11, 11, 11, 10},
             {.balls = 100, .probes = 104});
}

TEST(RegistryGoldenPins, ThresholdSlack2) {
  expect_pin(run_pinned("threshold[2]"), {9, 12, 9, 6, 9, 11, 12, 11, 11, 10},
             {.balls = 100, .probes = 102});
}

TEST(RegistryGoldenPins, DoublingThreshold) {
  expect_pin(run_pinned("doubling-threshold"), {10, 12, 11, 6, 9, 8, 13, 10, 10, 11},
             {.balls = 100, .probes = 106});
}

// The three adaptive spellings coincide at this scale (net vs total retry
// counting only diverges once retries cross the doubling boundary); each
// still gets its own pin so a change to any one spelling is caught.
TEST(RegistryGoldenPins, Adaptive) {
  expect_pin(run_pinned("adaptive"), {9, 10, 11, 9, 10, 8, 11, 10, 11, 11},
             {.balls = 100, .probes = 131});
}

TEST(RegistryGoldenPins, AdaptiveNet) {
  expect_pin(run_pinned("adaptive-net"), {9, 10, 11, 9, 10, 8, 11, 10, 11, 11},
             {.balls = 100, .probes = 131});
}

TEST(RegistryGoldenPins, AdaptiveTotal) {
  expect_pin(run_pinned("adaptive-total"), {9, 10, 11, 9, 10, 8, 11, 10, 11, 11},
             {.balls = 100, .probes = 131});
}

TEST(RegistryGoldenPins, StaleAdaptiveDelta8) {
  expect_pin(run_pinned("stale-adaptive[8]"), {9, 10, 10, 10, 10, 9, 11, 10, 10, 11},
             {.balls = 100, .probes = 152});
}

TEST(RegistryGoldenPins, SkewedAdaptive50) {
  expect_pin(run_pinned("skewed-adaptive[50]"), {11, 11, 11, 11, 11, 11, 11, 8, 9, 6},
             {.balls = 100, .probes = 147});
}

TEST(RegistryGoldenPins, BatchedCapacity16) {
  // One LW round suffices at capacity 16: the round-synchronous batch
  // path reports rounds = 1 where the streaming protocols report 0.
  expect_pin(run_pinned("batched[16]"), {9, 12, 9, 5, 9, 11, 13, 11, 11, 10},
             {.balls = 100, .probes = 100, .rounds = 1});
}

TEST(RegistryGoldenPins, SelfBalancing) {
  expect_pin(run_pinned("self-balancing"), {10, 10, 10, 10, 10, 10, 10, 10, 10, 10},
             {.balls = 100, .probes = 200, .reallocations = 4, .rounds = 2});
}

// Cuckoo at m = 100 cannot complete in 10 buckets of 4 (40 slots), so its
// pin runs at m = 30 (load factor 0.75) where insertion terminates.
TEST(RegistryGoldenPins, CuckooD2B4) {
  expect_pin(run_pinned("cuckoo[2,4]", 30), {3, 3, 2, 0, 4, 4, 4, 4, 4, 2},
             {.balls = 30, .probes = 60});
}

// ---------------------------------------------------------------------------
// shards[t]: — the sharded engine wrapper (src/bbb/shard/)
// ---------------------------------------------------------------------------

// shards[1]:spec runs the inner family through the single-shard streaming
// path, which the engine promises is bit-identical to the sequential
// core. Pinning it as *equality with the sequential result* (itself
// pinned above) keeps one source of truth per family while still
// catching any drift in the shards[1] plumbing. batched is excluded: its
// sequential spelling is the round-synchronous protocol (rounds = 1)
// while shards[1] runs the streaming rule form — it gets its own literal
// pin below.
TEST(RegistryGoldenPins, ShardsSingleMatchesSequentialEveryFamily) {
  const std::vector<std::string> families = {
      "one-choice",       "greedy[2]",          "left[2]",
      "memory[2,1]",      "threshold",          "threshold[2]",
      "doubling-threshold", "adaptive",         "adaptive-net",
      "adaptive-total",   "stale-adaptive[8]",  "skewed-adaptive[50]",
      "self-balancing"};
  for (const std::string& spec : families) {
    const AllocationResult seq = run_pinned(spec);
    const AllocationResult sharded = run_pinned("shards[1]:" + spec);
    EXPECT_EQ(sharded.loads, seq.loads) << spec;
    EXPECT_EQ(sharded.balls, seq.balls) << spec;
    EXPECT_EQ(sharded.probes, seq.probes) << spec;
    EXPECT_EQ(sharded.reallocations, seq.reallocations) << spec;
    EXPECT_EQ(sharded.rounds, seq.rounds) << spec;
  }
  const AllocationResult seq = run_pinned("cuckoo[2,4]", 30);
  const AllocationResult sharded = run_pinned("shards[1]:cuckoo[2,4]", 30);
  EXPECT_EQ(sharded.loads, seq.loads);
  EXPECT_EQ(sharded.probes, seq.probes);
}

TEST(RegistryGoldenPins, ShardsSingleBatchedStreamingForm) {
  // Same placements as the batched[16] protocol pin (the LW batch order
  // is identical), but the streaming rule form reports rounds = 0.
  expect_pin(run_pinned("shards[1]:batched[16]"),
             {9, 12, 9, 5, 9, 11, 13, 11, 11, 10}, {.balls = 100, .probes = 100});
}

TEST(RegistryGoldenPins, ShardsTwoGreedyD2) {
  // Multi-shard pin: the conflict-deferred round protocol at t = 2.
  // rounds here is the engine's sync-round count (one round at m = 100
  // under the default round size), not an LW round count.
  expect_pin(run_pinned("shards[2]:greedy[2]"), {9, 9, 11, 10, 9, 8, 10, 12, 10, 12},
             {.balls = 100, .probes = 200, .rounds = 1});
}

}  // namespace
}  // namespace bbb::core
