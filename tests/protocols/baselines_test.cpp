/// Baseline protocols: one-choice, greedy[d], left[d], memory(d,k).

#include <gtest/gtest.h>

#include <cmath>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/d_choice.hpp"
#include "bbb/core/protocols/left_d.hpp"
#include "bbb/core/protocols/memory_dk.hpp"
#include "bbb/core/protocols/one_choice.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/stats/running_stats.hpp"

namespace bbb::core {
namespace {

double mean_max_load(const Protocol& protocol, std::uint64_t m, std::uint32_t n,
                     std::uint32_t reps, std::uint64_t seed) {
  stats::RunningStats s;
  rng::SeedSequence seq(seed);
  for (std::uint32_t r = 0; r < reps; ++r) {
    rng::Engine gen = seq.engine(r);
    s.add(static_cast<double>(max_load(protocol.run(m, n, gen).loads)));
  }
  return s.mean();
}

TEST(OneChoice, ProbesExactlyM) {
  rng::Engine gen(1);
  const AllocationResult res = OneChoiceProtocol{}.run(5000, 100, gen);
  EXPECT_EQ(res.probes, 5000u);
}

TEST(OneChoice, MaxLoadNearTheoryAtMEqualsN) {
  // log n / log log n ~ 4.7 at n = 4096; empirical mean max load is in a
  // narrow band around it. Assert a broad sanity window.
  constexpr std::uint32_t n = 4096;
  const double ml = mean_max_load(OneChoiceProtocol{}, n, n, 10, 99);
  EXPECT_GE(ml, 3.0);
  EXPECT_LE(ml, 10.0);
}

TEST(DChoice, ProbesExactlyDM) {
  rng::Engine gen(2);
  const AllocationResult res = DChoiceProtocol{3}.run(1000, 64, gen);
  EXPECT_EQ(res.probes, 3000u);
}

TEST(DChoice, TwoChoicesBeatOneChoice) {
  constexpr std::uint32_t n = 4096;
  const double one = mean_max_load(OneChoiceProtocol{}, n, n, 10, 7);
  const double two = mean_max_load(DChoiceProtocol{2}, n, n, 10, 7);
  EXPECT_LT(two, one);  // the power of two choices
  EXPECT_LE(two, 4.0);  // ln ln n / ln 2 + O(1) ~ 3 at n = 4096
}

TEST(DChoice, MoreChoicesNeverHurt) {
  constexpr std::uint32_t n = 2048;
  const double d2 = mean_max_load(DChoiceProtocol{2}, n, n, 20, 8);
  const double d4 = mean_max_load(DChoiceProtocol{4}, n, n, 20, 8);
  EXPECT_LE(d4, d2 + 0.5);  // allow sampling noise
}

TEST(DChoice, RejectsZeroD) {
  EXPECT_THROW(DChoiceProtocol{0}, std::invalid_argument);
  EXPECT_THROW(DChoiceRule{0}, std::invalid_argument);
}

TEST(DChoice, DOneEquivalentToOneChoiceInLaw) {
  // greedy[1] is one-choice; same seed gives the same loads because both
  // draw exactly one uniform bin per ball.
  rng::Engine g1(3), g2(3);
  const AllocationResult a = DChoiceProtocol{1}.run(500, 32, g1);
  const AllocationResult b = OneChoiceProtocol{}.run(500, 32, g2);
  EXPECT_EQ(a.loads, b.loads);
}

TEST(LeftD, GroupsPartitionBins) {
  LeftDRule rule(10, 3);
  std::vector<bool> covered(10, false);
  for (std::uint32_t g = 0; g < 3; ++g) {
    const auto [first, last] = rule.group_range(g);
    EXPECT_LT(first, last);
    for (std::uint32_t b = first; b < last; ++b) {
      EXPECT_FALSE(covered[b]) << "bin " << b << " in two groups";
      covered[b] = true;
    }
  }
  for (bool c : covered) EXPECT_TRUE(c);
}

TEST(LeftD, GroupSizesNearlyEqual) {
  LeftDRule rule(1000, 7);
  std::uint32_t lo = 1000, hi = 0;
  for (std::uint32_t g = 0; g < 7; ++g) {
    const auto [first, last] = rule.group_range(g);
    lo = std::min(lo, last - first);
    hi = std::max(hi, last - first);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(LeftD, CompetitiveWithGreedyAtSameD) {
  // Vöcking's theorem says left[2] beats greedy[2] asymptotically; at finite
  // n we assert it is at least not worse by more than sampling noise.
  constexpr std::uint32_t n = 4096;
  const double g2 = mean_max_load(DChoiceProtocol{2}, n, n, 20, 10);
  const double l2 = mean_max_load(LeftDProtocol{2}, n, n, 20, 10);
  EXPECT_LE(l2, g2 + 0.3);
}

TEST(LeftD, Validation) {
  EXPECT_THROW(LeftDProtocol{0}, std::invalid_argument);
  EXPECT_THROW(LeftDRule(4, 5), std::invalid_argument);  // d > n
  LeftDRule ok(4, 4);
  EXPECT_THROW((void)ok.group_range(4), std::invalid_argument);
}

TEST(MemoryDK, FreshProbesOnlyCountD) {
  rng::Engine gen(4);
  const AllocationResult res = MemoryDKProtocol{1, 1}.run(1000, 64, gen);
  EXPECT_EQ(res.probes, 1000u);  // k memory lookups are free
}

TEST(MemoryDK, MemoryHoldsAtMostKDistinctBins) {
  BinState state(64);
  MemoryDKRule rule(2, 3);
  rng::Engine gen(5);
  for (int i = 0; i < 200; ++i) {
    rule.place_one(state, gen);
    EXPECT_LE(rule.memory().size(), 3u);
    // Entries must be distinct.
    auto mem = rule.memory();
    std::sort(mem.begin(), mem.end());
    EXPECT_EQ(std::adjacent_find(mem.begin(), mem.end()), mem.end());
  }
}

TEST(MemoryDK, BeatsOneChoiceAtMEqualsN) {
  constexpr std::uint32_t n = 4096;
  const double one = mean_max_load(OneChoiceProtocol{}, n, n, 10, 11);
  const double mem = mean_max_load(MemoryDKProtocol{1, 1}, n, n, 10, 11);
  EXPECT_LT(mem, one);
  EXPECT_LE(mem, 4.0);  // theory: ln ln n / (2 ln phi_2) + O(1)
}

TEST(MemoryDK, Validation) {
  EXPECT_THROW(MemoryDKProtocol(0, 1), std::invalid_argument);
  EXPECT_THROW(MemoryDKProtocol(1, 0), std::invalid_argument);
  EXPECT_THROW(MemoryDKRule(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace bbb::core
