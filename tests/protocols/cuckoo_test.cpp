#include "bbb/core/protocols/cuckoo.hpp"

#include <gtest/gtest.h>

#include "bbb/rng/streams.hpp"

namespace bbb::core {
namespace {

TEST(Cuckoo, Validation) {
  EXPECT_THROW(CuckooRule(0, {2, 4, 100}), std::invalid_argument);
  EXPECT_THROW(CuckooRule(8, {0, 4, 100}), std::invalid_argument);
  EXPECT_THROW(CuckooRule(8, {2, 0, 100}), std::invalid_argument);
  EXPECT_THROW(CuckooRule(8, {2, 4, 0}), std::invalid_argument);
  EXPECT_THROW(CuckooRule(2, {3, 4, 100}), std::invalid_argument);  // d > n
}

TEST(Cuckoo, BucketSizeNeverExceeded) {
  BinState state(128);
  CuckooRule rule(128, {2, 4, 200});
  rng::Engine gen(1);
  for (int i = 0; i < 400; ++i) (void)rule.place_one(state, gen);
  for (std::uint32_t l : state.loads()) EXPECT_LE(l, 4u);
}

TEST(Cuckoo, ModerateLoadFactorAlwaysSucceeds) {
  // d=2, k=4 supports load factors well above 0.9; at 0.75 every insert
  // must succeed.
  constexpr std::uint32_t n = 1024;
  BinState state(n);
  CuckooRule rule(n, {2, 4, 500});
  rng::Engine gen(2);
  const auto target = static_cast<std::uint64_t>(0.75 * 4 * n);
  for (std::uint64_t i = 0; i < target; ++i) {
    (void)rule.place_one(state, gen);
    ASSERT_EQ(rule.stash(), 0u) << "failed at item " << i;
  }
  EXPECT_TRUE(rule.completed());
  EXPECT_EQ(state.balls(), target);
}

TEST(Cuckoo, OverfullTableFailsCleanly) {
  // More items than slots: failures are inevitable and must be reported,
  // with the table still consistent.
  constexpr std::uint32_t n = 64;
  BinState state(n);
  CuckooRule rule(n, {2, 2, 50});
  rng::Engine gen(3);
  for (std::uint64_t i = 0; i < 3ULL * 2 * n; ++i) {
    (void)rule.place_one(state, gen);
  }
  EXPECT_GT(rule.stash(), 0u);
  EXPECT_FALSE(rule.completed());
  // Stored items + stash == attempts.
  std::uint64_t stored = 0;
  for (std::uint32_t l : state.loads()) stored += l;
  EXPECT_EQ(stored + rule.stash(), rule.total_placed());
  EXPECT_EQ(stored, state.balls());
}

TEST(Cuckoo, MovesCountedOnlyWhenEvicting) {
  // A nearly empty table never evicts.
  BinState state(256);
  CuckooRule rule(256, {2, 4, 100});
  rng::Engine gen(4);
  for (int i = 0; i < 32; ++i) (void)rule.place_one(state, gen);
  EXPECT_EQ(rule.moves(), 0u);
  EXPECT_EQ(rule.reallocations(), 0u);
}

TEST(Cuckoo, ProbesAreDPerItem) {
  BinState state(256);
  CuckooRule rule(256, {3, 4, 100});
  rng::Engine gen(5);
  for (int i = 0; i < 100; ++i) (void)rule.place_one(state, gen);
  EXPECT_EQ(rule.probes(), 300u);
}

TEST(CuckooProtocol, RunAggregatesRule) {
  rng::Engine gen(6);
  CuckooRule::Params params{2, 4, 500};
  const AllocationResult res = CuckooProtocol{params}.run(2048, 1024, gen);
  EXPECT_TRUE(res.completed);  // load factor 0.5, trivially feasible
  EXPECT_EQ(res.balls, 2048u);
  std::uint64_t total = 0;
  for (std::uint32_t l : res.loads) total += l;
  EXPECT_EQ(total, 2048u);
}

TEST(CuckooProtocol, ReportsFailureAboveCapacity) {
  rng::Engine gen(7);
  CuckooRule::Params params{2, 2, 100};
  const AllocationResult res = CuckooProtocol{params}.run(600, 128, gen);  // 600 > 256
  EXPECT_FALSE(res.completed);
  EXPECT_LT(res.balls, 600u);
}

}  // namespace
}  // namespace bbb::core
