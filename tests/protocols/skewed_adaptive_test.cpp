#include "bbb/core/protocols/skewed_adaptive.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/rng/streams.hpp"

namespace bbb::core {
namespace {

TEST(SkewedAdaptive, Validation) {
  EXPECT_THROW(SkewedAdaptiveRule(0, 1.0), std::invalid_argument);
  EXPECT_THROW(SkewedAdaptiveRule(8, -1.0), std::invalid_argument);
}

// The load guarantee is distribution-free: it must hold for every skew.
class SkewGuaranteeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SkewGuaranteeTest, MaxLoadBoundSurvivesAnySkew) {
  const std::uint32_t s100 = GetParam();
  constexpr std::uint32_t n = 128;
  constexpr std::uint64_t m = 8ULL * n + 11;
  rng::Engine gen(s100 + 1);
  const auto res = SkewedAdaptiveProtocol{s100}.run(m, n, gen);
  EXPECT_LE(max_load(res.loads), ceil_div(m, n) + 1);
  EXPECT_EQ(std::accumulate(res.loads.begin(), res.loads.end(), std::uint64_t{0}), m);
}

INSTANTIATE_TEST_SUITE_P(SkewSweep, SkewGuaranteeTest,
                         ::testing::Values(0u, 50u, 100u, 150u, 200u));

TEST(SkewedAdaptive, ZeroSkewMatchesPlainAdaptiveStatistically) {
  // s = 0 is uniform probing. The probe *sequence* differs from plain
  // adaptive (alias table consumes two draws), so compare distributions,
  // not bits: allocation cost per ball must agree within a few percent.
  constexpr std::uint32_t n = 512;
  constexpr std::uint64_t m = 16ULL * n;
  double skew_total = 0, plain_total = 0;
  rng::SeedSequence seq(11);
  constexpr int kReps = 10;
  for (int r = 0; r < kReps; ++r) {
    rng::Engine g1 = seq.engine(r);
    rng::Engine g2 = seq.engine(100 + r);
    skew_total += static_cast<double>(SkewedAdaptiveProtocol{0}.run(m, n, g1).probes);
    plain_total += static_cast<double>(AdaptiveProtocol{}.run(m, n, g2).probes);
  }
  EXPECT_NEAR(skew_total / plain_total, 1.0, 0.05);
}

TEST(SkewedAdaptive, SkewInflatesAllocationTime) {
  // Theorem 3.1's O(m) leans on uniformity: biased probing must cost
  // strictly more, monotonically in s.
  constexpr std::uint32_t n = 512;
  constexpr std::uint64_t m = 8ULL * n;
  rng::SeedSequence seq(13);
  double prev = 0.0;
  for (std::uint32_t s100 : {0u, 100u, 200u}) {
    rng::Engine gen = seq.engine(s100);
    const auto res = SkewedAdaptiveProtocol{s100}.run(m, n, gen);
    const double per_ball = static_cast<double>(res.probes) / static_cast<double>(m);
    EXPECT_GT(per_ball, prev) << "s/100=" << s100;
    prev = per_ball;
  }
  // At s = 2 the cold tail is severe; the cost should be clearly
  // super-constant (well above the uniform ~1.3).
  EXPECT_GT(prev, 5.0);
}

TEST(SkewedAdaptive, StreamingAndBatchAgree) {
  constexpr std::uint32_t n = 64;
  constexpr std::uint64_t m = 500;
  rng::Engine g1(21), g2(21);
  BinState state(n);
  SkewedAdaptiveRule rule(n, 0.5);
  for (std::uint64_t i = 0; i < m; ++i) (void)rule.place_one(state, g1);
  const auto batch = SkewedAdaptiveProtocol{50}.run(m, n, g2);
  EXPECT_EQ(state.loads(), batch.loads);
  EXPECT_EQ(rule.probes(), batch.probes);
}

TEST(SkewedAdaptive, NameRoundTripsThroughRegistry) {
  EXPECT_EQ(SkewedAdaptiveProtocol{150}.name(), "skewed-adaptive[150]");
}

}  // namespace
}  // namespace bbb::core
