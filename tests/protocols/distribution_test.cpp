/// Distribution-level checks: the protocols' *load distributions* must match
/// what occupancy theory predicts, not just their extremes. This catches
/// subtle sampling bias (e.g. a broken bounded-uniform or tie-break) that
/// max-load tests alone would miss.

#include <gtest/gtest.h>

#include <cmath>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/core/protocols/d_choice.hpp"
#include "bbb/core/protocols/one_choice.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/stats/histogram.hpp"
#include "bbb/stats/hypothesis.hpp"
#include "bbb/theory/occupancy.hpp"

namespace bbb::core {
namespace {

// One-choice final loads are Bin(m, 1/n) per bin; the *counts of bins at
// each load value* must match n * pmf. Aggregate over replicates and
// chi-square against the occupancy prediction.
TEST(LoadDistribution, OneChoiceMatchesBinomialOccupancy) {
  constexpr std::uint32_t n = 1024;
  constexpr std::uint64_t m = 4ULL * n;
  constexpr std::uint32_t kMaxCell = 12;
  rng::SeedSequence seq(31);

  std::vector<std::uint64_t> observed(kMaxCell + 1, 0);
  constexpr int kReps = 30;
  for (int r = 0; r < kReps; ++r) {
    rng::Engine gen = seq.engine(r);
    const auto res = OneChoiceProtocol{}.run(m, n, gen);
    for (std::uint32_t l : res.loads) ++observed[std::min(l, kMaxCell)];
  }
  std::vector<double> expected(kMaxCell + 1, 0.0);
  double head = 0.0;
  for (std::uint32_t k = 0; k < kMaxCell; ++k) {
    expected[k] = theory::expected_bins_with_load(m, n, k) / static_cast<double>(n);
    head += expected[k];
  }
  expected[kMaxCell] = std::max(0.0, 1.0 - head);
  const auto res = stats::chi_square_gof(observed, expected);
  // Bin loads within one replicate are weakly negatively correlated (they
  // sum to m), which *shrinks* the chi-square statistic slightly — the test
  // is conservative in the direction we care about.
  EXPECT_GT(res.p_value, 1e-4) << "stat=" << res.statistic;
}

TEST(LoadDistribution, OneChoiceEmptyBinCountMatchesTheory) {
  constexpr std::uint32_t n = 4096;
  rng::SeedSequence seq(32);
  double total_empty = 0;
  constexpr int kReps = 25;
  for (int r = 0; r < kReps; ++r) {
    rng::Engine gen = seq.engine(r);
    const auto res = OneChoiceProtocol{}.run(n, n, gen);
    total_empty += static_cast<double>(empty_bins(res.loads));
  }
  const double mean_empty = total_empty / kReps;
  EXPECT_NEAR(mean_empty, theory::expected_empty_bins(n, n),
              4.0 * std::sqrt(static_cast<double>(n)));
}

// greedy[2] at m = n: almost no bin exceeds load 2 and empty bins are far
// rarer than one-choice's n/e (the power of two choices reshapes the whole
// histogram, not just the max).
TEST(LoadDistribution, GreedyTwoReshapesHistogram) {
  constexpr std::uint32_t n = 4096;
  rng::Engine g1(33), g2(33);
  const auto greedy = DChoiceProtocol{2}.run(n, n, g1);
  const auto one = OneChoiceProtocol{}.run(n, n, g2);
  const auto h_greedy = load_histogram(greedy.loads);
  const auto h_one = load_histogram(one.loads);
  EXPECT_LT(h_greedy.count(0), h_one.count(0));
  // Mass above load 2 is (near-)zero for greedy[2] at m = n.
  std::uint64_t heavy = 0;
  for (const auto& [v, c] : h_greedy.items()) {
    if (v > 2) heavy += c;
  }
  EXPECT_LE(heavy, n / 100);
}

// Adaptive's min load rises stage by stage: after tau stages the minimum is
// at least tau - O(log n) (Corollary 3.5's gap bound applied at every
// prefix). Verify the monotone form: min load never decreases across stage
// boundaries and ends within the gap bound of the mean.
TEST(LoadDistribution, AdaptiveMinLoadTracksStages) {
  constexpr std::uint32_t n = 512;
  constexpr std::uint32_t stages = 32;
  rng::Engine gen(34);
  BinState state(n);
  AdaptiveRule rule;
  std::uint32_t prev_min = 0;
  for (std::uint32_t tau = 1; tau <= stages; ++tau) {
    for (std::uint32_t b = 0; b < n; ++b) (void)rule.place_one(state, gen);
    const std::uint32_t cur_min = min_load(state.loads());
    EXPECT_GE(cur_min, prev_min) << "stage " << tau;
    prev_min = cur_min;
  }
  EXPECT_GE(static_cast<double>(prev_min),
            static_cast<double>(stages) - 6.0 * std::log(static_cast<double>(n)) - 4.0);
}

}  // namespace
}  // namespace bbb::core
