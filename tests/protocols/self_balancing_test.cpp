#include "bbb/core/protocols/self_balancing.hpp"

#include <gtest/gtest.h>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/d_choice.hpp"
#include "bbb/rng/streams.hpp"

namespace bbb::core {
namespace {

TEST(SelfBalancing, Validation) {
  EXPECT_THROW(SelfBalancingProtocol{0}, std::invalid_argument);
}

TEST(SelfBalancing, ReachesFixpointOnModerateInstances) {
  rng::Engine gen(1);
  const AllocationResult res = SelfBalancingProtocol{}.run(1 << 14, 1 << 10, gen);
  EXPECT_TRUE(res.completed);
  EXPECT_GE(res.rounds, 1u);
}

TEST(SelfBalancing, NearPerfectBalanceHeavyLoad) {
  // CRS: fixpoint max load ~ ceil(m/n) (+1). At m = 16n we allow +1.
  constexpr std::uint32_t n = 1 << 10;
  constexpr std::uint64_t m = 16ULL * n;
  rng::Engine gen(2);
  const AllocationResult res = SelfBalancingProtocol{}.run(m, n, gen);
  EXPECT_TRUE(res.completed);
  EXPECT_LE(max_load(res.loads), ceil_div(m, n) + 1);
}

TEST(SelfBalancing, ImprovesOnPlainGreedyTwo) {
  constexpr std::uint32_t n = 1 << 12;
  constexpr std::uint64_t m = 32ULL * n;
  rng::Engine g1(3), g2(3);
  const AllocationResult greedy = DChoiceProtocol{2}.run(m, n, g1);
  const AllocationResult balanced = SelfBalancingProtocol{}.run(m, n, g2);
  EXPECT_LE(max_load(balanced.loads), max_load(greedy.loads));
  EXPECT_LE(quadratic_potential(balanced.loads, m),
            quadratic_potential(greedy.loads, m));
}

TEST(SelfBalancing, ReallocationsAreReported) {
  constexpr std::uint32_t n = 1 << 10;
  constexpr std::uint64_t m = 16ULL * n;
  rng::Engine gen(4);
  const AllocationResult res = SelfBalancingProtocol{}.run(m, n, gen);
  // At this density greedy[2] is not at the fixpoint, so moves must occur.
  EXPECT_GT(res.reallocations, 0u);
}

TEST(SelfBalancing, SinglePassBudgetReportsIncomplete) {
  // One pass is not enough to reach the fixpoint on a dense instance
  // (statistically certain at this size with this seed).
  constexpr std::uint32_t n = 1 << 10;
  constexpr std::uint64_t m = 64ULL * n;
  rng::Engine gen(5);
  const AllocationResult res = SelfBalancingProtocol{1}.run(m, n, gen);
  EXPECT_FALSE(res.completed);
  // Balls are still conserved even when incomplete.
  std::uint64_t total = 0;
  for (std::uint32_t l : res.loads) total += l;
  EXPECT_EQ(total, m);
}

TEST(SelfBalancing, FixpointHasNoImprovingMove) {
  // Indirect check: running the protocol twice (fresh seeds) both reach
  // completed == true, and a completed run's gap is at most 2 in the heavy
  // regime (any gap > 2 between a ball's two choices would have moved).
  constexpr std::uint32_t n = 512;
  constexpr std::uint64_t m = 128ULL * n;
  rng::Engine gen(6);
  const AllocationResult res = SelfBalancingProtocol{}.run(m, n, gen);
  ASSERT_TRUE(res.completed);
  // The *global* gap can exceed 2 only between bins not linked by any
  // ball's choice pair; at 128 balls per bin that is vanishingly rare.
  EXPECT_LE(load_gap(res.loads), 3u);
}

}  // namespace
}  // namespace bbb::core
