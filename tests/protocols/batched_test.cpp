#include "bbb/core/protocols/batched.hpp"

#include <gtest/gtest.h>

#include "bbb/core/metrics.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/theory/bounds.hpp"

namespace bbb::core {
namespace {

TEST(Batched, Validation) {
  EXPECT_THROW(BatchedProtocol({0, 1, 1}), std::invalid_argument);
  EXPECT_THROW(BatchedProtocol({1, 0, 1}), std::invalid_argument);
  EXPECT_THROW(BatchedProtocol({1, 1, 0}), std::invalid_argument);
}

TEST(Batched, ImpossibleLoadRejected) {
  BatchedProtocol p({2, 16, 16});
  rng::Engine gen(1);
  EXPECT_THROW((void)p.run(33, 16, gen), std::invalid_argument);  // 33 > 2*16
}

TEST(Batched, CapacityIsNeverExceeded) {
  BatchedProtocol p({2, 64, 64});
  rng::Engine gen(2);
  const AllocationResult res = p.run(1 << 12, 1 << 12, gen);
  for (std::uint32_t l : res.loads) EXPECT_LE(l, 2u);
}

TEST(Batched, CompletesAtMEqualsNCapacityTwo) {
  // The Lenzen-Wattenhofer regime: capacity 2 suffices to place n balls in
  // n bins within very few rounds.
  BatchedProtocol p({2, 64, 64});
  rng::Engine gen(3);
  const AllocationResult res = p.run(1 << 14, 1 << 14, gen);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.balls, std::uint64_t{1} << 14);
  EXPECT_LE(res.rounds, 12u);
}

TEST(Batched, RoundsScaleLikeLogStar) {
  // log*(2^20) = 4-ish; rounds should be a small single-digit multiple.
  BatchedProtocol p({2, 64, 64});
  rng::Engine gen(4);
  const AllocationResult res = p.run(1 << 16, 1 << 16, gen);
  EXPECT_TRUE(res.completed);
  const std::uint32_t ls = theory::log_star(static_cast<double>(1 << 16));
  EXPECT_LE(res.rounds, 4 * ls + 6);
}

TEST(Batched, TightCapacityWithOneRoundLeavesBallsUnplaced) {
  // capacity 1, one round, m = n: collisions are certain at this size, so
  // the run cannot complete.
  BatchedProtocol p({1, 1, 1});
  rng::Engine gen(5);
  const AllocationResult res = p.run(4096, 4096, gen);
  EXPECT_FALSE(res.completed);
  EXPECT_LT(res.balls, 4096u);
  EXPECT_EQ(res.rounds, 1u);
}

TEST(Batched, EventuallyFillsPerfectMatchWithCapacityOne) {
  // capacity 1 and m = n is a perfect-matching demand: every bin ends with
  // exactly one ball. Doubling fanout makes this converge.
  BatchedProtocol p({1, 64, 64});
  rng::Engine gen(6);
  const AllocationResult res = p.run(1024, 1024, gen);
  EXPECT_TRUE(res.completed);
  for (std::uint32_t l : res.loads) EXPECT_EQ(l, 1u);
}

TEST(Batched, MessagesAreLinearish) {
  // O(n) messages in the LW sense: allow a small constant factor.
  BatchedProtocol p({2, 64, 64});
  rng::Engine gen(7);
  const std::uint64_t n = 1 << 14;
  const AllocationResult res = p.run(n, static_cast<std::uint32_t>(n), gen);
  EXPECT_LE(res.probes, 8 * n);
}

TEST(Batched, ZeroBallsTrivial) {
  BatchedProtocol p({2, 4, 4});
  rng::Engine gen(8);
  const AllocationResult res = p.run(0, 16, gen);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.rounds, 0u);
  EXPECT_EQ(res.probes, 0u);
}

}  // namespace
}  // namespace bbb::core
