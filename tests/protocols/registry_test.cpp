#include "bbb/core/protocols/registry.hpp"

#include <gtest/gtest.h>

#include "bbb/rng/xoshiro256.hpp"

namespace bbb::core {
namespace {

TEST(Registry, BuildsEveryListedShape) {
  for (const auto& spec :
       {"one-choice", "greedy[2]", "left[3]", "memory[1,1]", "threshold",
        "threshold[2]", "adaptive", "adaptive[0]", "adaptive-net", "adaptive-net[2]",
        "adaptive-total", "batched[2]", "self-balancing", "cuckoo[2,4]"}) {
    EXPECT_NO_THROW((void)make_protocol(spec)) << spec;
  }
}

TEST(Registry, RuleFactoryBuildsEveryListedShape) {
  // The same grammar backs the streaming factory; names round-trip and the
  // rule's canonical name equals the batch protocol's.
  for (const auto& spec :
       {"one-choice", "greedy[2]", "left[3]", "memory[1,1]", "threshold",
        "threshold[2]", "doubling-threshold[0]", "adaptive", "adaptive-net",
        "adaptive-total[2]", "stale-adaptive[4]", "skewed-adaptive[50]", "batched[2]",
        "self-balancing", "cuckoo[2,4]"}) {
    const auto rule = make_rule(spec, 16);
    const auto again = make_rule(rule->name(), 16);
    EXPECT_EQ(again->name(), rule->name()) << spec;
    EXPECT_EQ(make_protocol(spec)->name(), rule->name()) << spec;
  }
}

TEST(Registry, RuleFactoryRejectsUnknownAndMalformed) {
  EXPECT_THROW((void)make_rule("nonsense", 8), std::invalid_argument);
  EXPECT_THROW((void)make_rule("greedy[", 8), std::invalid_argument);
  EXPECT_THROW((void)make_rule("left[9]", 8), std::invalid_argument);  // d > n
}

// Round-trip: the canonical name() of a built protocol must itself be a
// valid spec that builds an equivalent protocol.
class RegistryRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryRoundTripTest, NameParsesBack) {
  const auto p1 = make_protocol(GetParam());
  const auto p2 = make_protocol(p1->name());
  EXPECT_EQ(p1->name(), p2->name());
  // Equivalence beyond the name: same seed, same result. (m = 100, n = 32
  // satisfies every protocol's feasibility constraints, e.g. batched[4].)
  rng::Engine g1(5), g2(5);
  const auto r1 = p1->run(100, 32, g1);
  const auto r2 = p2->run(100, 32, g2);
  EXPECT_EQ(r1.loads, r2.loads);
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, RegistryRoundTripTest,
                         ::testing::Values("one-choice", "greedy[3]", "left[2]",
                                           "memory[2,1]", "threshold", "threshold[3]",
                                           "adaptive", "adaptive[2]", "batched[4]",
                                           "self-balancing", "cuckoo[2,4]",
                                           "stale-adaptive[16]"));

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_protocol("nonsense"), std::invalid_argument);
  EXPECT_THROW((void)make_protocol(""), std::invalid_argument);
}

TEST(Registry, MalformedSpecsThrow) {
  EXPECT_THROW((void)make_protocol("greedy["), std::invalid_argument);
  EXPECT_THROW((void)make_protocol("greedy[]"), std::invalid_argument);
  EXPECT_THROW((void)make_protocol("greedy[x]"), std::invalid_argument);
  EXPECT_THROW((void)make_protocol("greedy"), std::invalid_argument);  // missing d
  EXPECT_THROW((void)make_protocol("memory[1]"), std::invalid_argument);
  EXPECT_THROW((void)make_protocol("threshold[1,2]"), std::invalid_argument);
  EXPECT_THROW((void)make_protocol("one-choice[1]"), std::invalid_argument);
  EXPECT_THROW((void)make_protocol("self-balancing[2]"), std::invalid_argument);
}

TEST(Registry, InvalidParametersPropagate) {
  EXPECT_THROW((void)make_protocol("greedy[0]"), std::invalid_argument);
  EXPECT_THROW((void)make_protocol("memory[0,1]"), std::invalid_argument);
  EXPECT_THROW((void)make_protocol("batched[0]"), std::invalid_argument);
  EXPECT_THROW((void)make_protocol("cuckoo[0,4]"), std::invalid_argument);
}

TEST(Registry, BothFactoriesAgreeOnBatchedArgs) {
  // Overflowing capacities are rejected, not truncated, and arity errors
  // are the same on the batch and streaming sides of the registry.
  EXPECT_THROW((void)make_protocol("batched[4294967297]"), std::invalid_argument);
  EXPECT_THROW((void)make_rule("batched[4294967297]", 8), std::invalid_argument);
  EXPECT_THROW((void)make_protocol("batched[2,9]"), std::invalid_argument);
  EXPECT_THROW((void)make_rule("batched[2,9]", 8), std::invalid_argument);
  EXPECT_EQ(make_protocol("batched")->name(), "batched[2]");
  EXPECT_EQ(make_rule("batched", 8)->name(), "batched[2]");
}

TEST(Registry, SpecListNonEmptyAndDocumentsShapes) {
  const auto specs = protocol_specs();
  EXPECT_GE(specs.size(), 10u);
}

}  // namespace
}  // namespace bbb::core
