/// End-to-end tests for weighted balls and heterogeneous-capacity bins:
/// capacity-proportional probing beats uniform probing on unequal servers
/// (the PR's acceptance experiment), weighted placements are atomic for the
/// rules that support them, and uniform-capacity specs stay bit-for-bit
/// identical to their classic unprefixed forms.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "bbb/core/bin_state.hpp"
#include "bbb/core/probe.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/core/rule.hpp"
#include "bbb/core/spec.hpp"
#include "bbb/rng/xoshiro256.hpp"
#include "bbb/theory/bounds.hpp"

namespace bbb::core {
namespace {

// Four capacity classes c in {1, 2, 4, 8}, cycled over n bins.
std::vector<std::uint32_t> fleet_capacities(std::uint32_t n) {
  return expand_capacities({1, 2, 4, 8}, n);
}

// Uniform-probe two-choice on a heterogeneous state: the classic greedy[2]
// decision (raw loads, uniform candidates) driven by hand, since the
// registry's greedy[2] automatically upgrades to capacity-proportional
// probes on a capacitated state.
double uniform_probe_two_choice_excess(std::uint32_t n, std::uint64_t m,
                                       std::uint64_t seed) {
  BinState state(fleet_capacities(n));
  rng::Engine gen(seed);
  std::uint64_t probes = 0;
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint32_t bin = least_loaded_of(
        gen, n, 2, probes, [&state](std::uint32_t b) { return state.load(b); });
    state.add_ball(bin);
  }
  return state.max_norm_load() - state.norm_average();
}

double capacity_probe_two_choice_excess(std::uint32_t n, std::uint64_t m,
                                        std::uint64_t seed) {
  const auto alloc = make_streaming_allocator("capacities=1,2,4,8:greedy[2]", n);
  rng::Engine gen(seed);
  for (std::uint64_t i = 0; i < m; ++i) (void)alloc->place(gen);
  return alloc->state().max_norm_load() - alloc->state().norm_average();
}

// The PR's acceptance experiment: with capacities c_i ∝ 2^i over 4
// classes, capacity-proportional two-choice keeps every l_i/c_i within a
// whisker of m/C, while uniform-probe two-choice equalizes *raw* loads and
// leaves the small bins ~ (m/n) / 1 overloaded. The normalized excess
// max_i l_i/c_i - m/C separates by far more than the required 5x.
TEST(HeterogeneousFleet, CapacityProbesBeatUniformProbesFiveFold) {
  const std::uint32_t n = 1024;
  const std::uint64_t m = 16 * 3840;  // 16 units per unit of capacity
  const double uniform = uniform_probe_two_choice_excess(n, m, 7);
  const double proportional = capacity_probe_two_choice_excess(n, m, 7);
  EXPECT_GT(proportional, 0.0);
  EXPECT_GE(uniform, 5.0 * proportional)
      << "uniform excess " << uniform << " vs proportional " << proportional;
}

TEST(HeterogeneousFleet, OneChoiceFillsProportionallyToCapacity) {
  const std::uint32_t n = 512;
  const auto alloc = make_streaming_allocator("capacities=1,7:one-choice", n);
  rng::Engine gen(3);
  for (int i = 0; i < 80'000; ++i) (void)alloc->place(gen);
  // Odd bins hold capacity 7: they should absorb ~7/8 of the balls.
  std::uint64_t heavy = 0;
  for (std::uint32_t b = 1; b < n; b += 2) heavy += alloc->state().load(b);
  const double frac =
      static_cast<double>(heavy) / static_cast<double>(alloc->state().balls());
  EXPECT_NEAR(frac, 7.0 / 8.0, 0.02);
}

TEST(HeterogeneousFleet, LeftDProbesWithinGroupsByCapacity) {
  const std::uint32_t n = 512;
  const std::uint64_t m = 16 * 1920;
  const auto alloc = make_streaming_allocator("capacities=1,2,4,8:left[2]", n);
  rng::Engine gen(11);
  for (std::uint64_t i = 0; i < m; ++i) (void)alloc->place(gen);
  // Multi-choice with capacity probes keeps the normalized excess tiny
  // compared to the one-choice fluctuation scale.
  const double excess =
      alloc->state().max_norm_load() - alloc->state().norm_average();
  const double one_choice = theory::weighted_one_choice_max_norm_load(
                                m, alloc->state().capacities()) -
                            alloc->state().norm_average();
  EXPECT_LT(excess, 0.5 * one_choice);
}

TEST(HeterogeneousFleet, WeightedOneChoiceBaselineTracksSimulation) {
  const std::uint32_t n = 1024;
  const std::uint64_t m = 32 * 3840;
  const auto alloc = make_streaming_allocator("capacities=1,2,4,8:one-choice", n);
  rng::Engine gen(13);
  for (std::uint64_t i = 0; i < m; ++i) (void)alloc->place(gen);
  const double predicted =
      theory::weighted_one_choice_max_norm_load(m, alloc->state().capacities());
  const double measured = alloc->state().max_norm_load();
  // The closed form is a leading-order estimate; demand the right scale,
  // not the exact constant.
  EXPECT_GT(measured, alloc->state().norm_average());
  EXPECT_LT(measured, 1.5 * predicted);
  EXPECT_GT(1.5 * measured, predicted);
}

// ---------------------------------------------------------------------------
// Unit-weight / uniform-capacity compatibility
// ---------------------------------------------------------------------------

TEST(HeterogeneousFleet, UniformCapacityPrefixMatchesClassicBitForBit) {
  // All-equal capacities keep the classic uniform probe path, so the
  // capacitated spec reproduces the plain spec from the same engine state.
  for (const char* inner :
       {"one-choice", "greedy[2]", "left[2]", "adaptive", "self-balancing"}) {
    rng::Engine a(99), b(99);
    const auto classic = make_protocol(inner)->run(4096, 256, a);
    const auto prefixed =
        make_protocol(std::string("capacities=3:") + inner)->run(4096, 256, b);
    EXPECT_EQ(classic.loads, prefixed.loads) << inner;
    EXPECT_EQ(classic.probes, prefixed.probes) << inner;
  }
}

TEST(HeterogeneousFleet, CapacitatedBatchedUsesStreamingFormByDesign) {
  // The one documented exception to the bit-for-bit rule above: batched's
  // batch form is the round-synchronous LW algorithm, which has no
  // per-ball streaming decomposition — a capacitated batched run drives
  // the capacity-bounded streaming rule instead (docs/PROTOCOLS.md).
  rng::Engine a(7), b(7);
  const auto lw = make_protocol("batched[8]")->run(1024, 256, a);
  const auto streaming = make_protocol("capacities=1:batched[8]")->run(1024, 256, b);
  EXPECT_GE(lw.rounds, 1u);         // LW counts synchronous rounds
  EXPECT_EQ(streaming.rounds, 0u);  // the streaming rule is one-shot
  EXPECT_EQ(streaming.balls, 1024u);
}

TEST(HeterogeneousFleet, CapacitatedProtocolNameRoundTrips) {
  const auto p = make_protocol("capacities=1,2,4,8:greedy[2]");
  EXPECT_EQ(p->name(), "capacities=1,2,4,8:greedy[2]");
  const auto again = make_protocol(p->name());
  EXPECT_EQ(again->name(), p->name());
  const auto alloc = make_streaming_allocator("capacities=1,2:one-choice", 8);
  EXPECT_EQ(alloc->name(), "capacities=1,2:one-choice");
}

TEST(HeterogeneousFleet, MakeRuleRejectsCapacityPrefix) {
  EXPECT_THROW((void)make_rule("capacities=1,2:greedy[2]", 8),
               std::invalid_argument);
  EXPECT_THROW((void)make_rule("weighted:one-choice", 8), std::invalid_argument);
  EXPECT_THROW((void)make_protocol("weighted:one-choice"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Weighted placement
// ---------------------------------------------------------------------------

TEST(WeightedPlacement, SupportedRulesCommitChainsAtomically) {
  for (const char* spec : {"one-choice", "greedy[2]", "left[2]"}) {
    const auto rule = make_rule(spec, 16);
    EXPECT_TRUE(rule->supports_weights()) << spec;
    BinState state(16);
    rng::Engine gen(1);
    const std::uint32_t bin = rule->place_one(state, 5, gen);
    EXPECT_EQ(state.load(bin), 5u) << spec;  // the whole chain in one bin
    EXPECT_EQ(state.balls(), 5u);
    EXPECT_EQ(rule->total_placed(), 5u);
  }
}

TEST(WeightedPlacement, UnsupportedRulesThrowAndDriversExplode) {
  const auto rule = make_rule("adaptive", 16);
  EXPECT_FALSE(rule->supports_weights());
  BinState state(16);
  rng::Engine gen(2);
  EXPECT_THROW((void)rule->place_one(state, 3, gen), std::logic_error);
  EXPECT_EQ(state.balls(), 0u);

  // The centralized fallback in StreamingAllocator explodes the chain.
  StreamingAllocator alloc(16, make_rule("adaptive", 16));
  (void)alloc.place_weighted(3, gen);
  EXPECT_EQ(alloc.state().balls(), 3u);
  EXPECT_EQ(alloc.total_placed(), 3u);
}

TEST(WeightedPlacement, WeightZeroRejectedEverywhere) {
  const auto rule = make_rule("one-choice", 4);
  BinState state(4);
  rng::Engine gen(3);
  EXPECT_THROW((void)rule->place_one(state, 0, gen), std::invalid_argument);
  StreamingAllocator alloc(4, make_rule("one-choice", 4));
  EXPECT_THROW((void)alloc.place_weighted(0, gen), std::invalid_argument);
}

TEST(WeightedPlacement, AtomicWeightedGreedyEqualizesNormalizedLoads) {
  // Chains of weight 4 through capacity-aware greedy[2]: the state should
  // stay balanced in l/c even though every placement moves 4 units.
  const std::uint32_t n = 256;
  const auto alloc = make_streaming_allocator("capacities=1,2,4,8:greedy[2]", n);
  rng::Engine gen(17);
  for (int i = 0; i < 8'000; ++i) (void)alloc->place_weighted(4, gen);
  const double excess =
      alloc->state().max_norm_load() - alloc->state().norm_average();
  EXPECT_LT(excess, 8.0);  // one-choice's excess here is ~15+
}

}  // namespace
}  // namespace bbb::core
