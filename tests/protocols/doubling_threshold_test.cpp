#include "bbb/core/protocols/doubling_threshold.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/rng/streams.hpp"

namespace bbb::core {
namespace {

TEST(DoublingThreshold, Validation) {
  EXPECT_THROW(DoublingThresholdRule(0), std::invalid_argument);
}

TEST(DoublingThreshold, GuessDefaultsToN) {
  DoublingThresholdRule rule(64);
  EXPECT_EQ(rule.guess(), 64u);
  EXPECT_EQ(rule.accept_bound(), 1u);
}

TEST(DoublingThreshold, GuessDoublesWhenExhausted) {
  constexpr std::uint32_t n = 16;
  BinState state(n);
  DoublingThresholdRule rule(n);
  rng::Engine gen(3);
  for (std::uint32_t i = 0; i < n; ++i) (void)rule.place_one(state, gen);
  EXPECT_EQ(rule.guess(), n);  // doubling happens lazily on the next place
  (void)rule.place_one(state, gen);
  EXPECT_EQ(rule.guess(), 2 * n);
  EXPECT_EQ(rule.accept_bound(), 2u);
}

TEST(DoublingThreshold, ConservesBalls) {
  rng::Engine gen(5);
  const auto res = DoublingThresholdProtocol{}.run(1000, 33, gen);
  EXPECT_EQ(std::accumulate(res.loads.begin(), res.loads.end(), std::uint64_t{0}),
            1000u);
}

TEST(DoublingThreshold, MaxLoadBoundedByFinalGuess) {
  // The bound the scheme actually guarantees: ceil(M_final/n) + 1 where
  // M_final < 2m (for m >= initial guess).
  constexpr std::uint32_t n = 128;
  for (std::uint64_t m : {150ULL * n / 100, 3ULL * n, 9ULL * n / 2}) {
    rng::Engine gen(m);
    const auto res = DoublingThresholdProtocol{}.run(m, n, gen);
    EXPECT_LE(max_load(res.loads), ceil_div(2 * m, n) + 1) << "m=" << m;
  }
}

TEST(DoublingThreshold, LosesOptimalLoadPastDoublingBoundary) {
  // m just past a doubling boundary: the current guess is ~2m, so the
  // acceptance bound is ~2m/n and the realized max load clearly exceeds
  // adaptive's ceil(m/n)+1 — the design failure adaptive exists to fix.
  constexpr std::uint32_t n = 1 << 10;
  const std::uint64_t m = 8ULL * n + n / 4;  // just past guess 8n
  rng::Engine g1(7), g2(7);
  const auto doubling = DoublingThresholdProtocol{}.run(m, n, g1);
  const auto adapt = AdaptiveProtocol{}.run(m, n, g2);
  EXPECT_LE(max_load(adapt.loads), ceil_div(m, n) + 1);
  EXPECT_GT(max_load(doubling.loads), ceil_div(m, n) + 1);
}

TEST(DoublingThreshold, AllocationTimeStaysLinear) {
  constexpr std::uint32_t n = 1 << 10;
  constexpr std::uint64_t m = 20ULL * n;
  rng::Engine gen(9);
  const auto res = DoublingThresholdProtocol{}.run(m, n, gen);
  EXPECT_LT(static_cast<double>(res.probes), 2.0 * static_cast<double>(m));
}

TEST(DoublingThreshold, ExplicitInitialGuessHonored) {
  DoublingThresholdRule rule(10, 100);
  EXPECT_EQ(rule.guess(), 100u);
  EXPECT_EQ(rule.accept_bound(), 10u);
}

TEST(DoublingThreshold, RegistryRoundTrip) {
  const auto p = DoublingThresholdProtocol{64};
  EXPECT_EQ(p.name(), "doubling-threshold[64]");
}

}  // namespace
}  // namespace bbb::core
