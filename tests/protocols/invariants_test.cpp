/// Cross-protocol invariants, swept over every registered protocol and a
/// grid of (m, n) shapes via TEST_P. These are the properties that must
/// hold for *any* correct balls-into-bins implementation:
///   * conservation: sum of loads == balls reported placed
///   * determinism: identical seeds give identical loads and probes
///   * independence: different seeds give different outcomes (statistically)
///   * sanity: probe counts are at least the work performed

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <tuple>

#include "bbb/core/protocols/registry.hpp"
#include "bbb/rng/streams.hpp"

namespace bbb::core {
namespace {

struct GridCase {
  std::string spec;
  std::uint64_t m;
  std::uint32_t n;
};

void PrintTo(const GridCase& c, std::ostream* os) {
  *os << c.spec << "{m=" << c.m << ",n=" << c.n << "}";
}

class ProtocolInvariantTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(ProtocolInvariantTest, ConservationOfBalls) {
  const auto& [spec, m, n] = GetParam();
  const auto protocol = make_protocol(spec);
  rng::Engine gen(1234);
  const AllocationResult res = protocol->run(m, n, gen);
  ASSERT_EQ(res.loads.size(), n);
  const std::uint64_t total =
      std::accumulate(res.loads.begin(), res.loads.end(), std::uint64_t{0});
  EXPECT_EQ(total, res.balls);
  EXPECT_LE(res.balls, m);
  if (res.completed) {
    EXPECT_EQ(res.balls, m);
  }
}

TEST_P(ProtocolInvariantTest, DeterministicForSameSeed) {
  const auto& [spec, m, n] = GetParam();
  const auto protocol = make_protocol(spec);
  rng::Engine g1(77), g2(77);
  const AllocationResult a = protocol->run(m, n, g1);
  const AllocationResult b = protocol->run(m, n, g2);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.balls, b.balls);
  EXPECT_EQ(a.reallocations, b.reallocations);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.completed, b.completed);
}

TEST_P(ProtocolInvariantTest, DifferentSeedsUsuallyDiffer) {
  const auto& [spec, m, n] = GetParam();
  if (m < 16) GTEST_SKIP() << "too few balls for the outcome to vary reliably";
  const auto protocol = make_protocol(spec);
  rng::Engine g1(1), g2(2);
  const AllocationResult a = protocol->run(m, n, g1);
  const AllocationResult b = protocol->run(m, n, g2);
  EXPECT_NE(a.loads, b.loads);
}

TEST_P(ProtocolInvariantTest, ProbesCoverPlacedBalls) {
  const auto& [spec, m, n] = GetParam();
  const auto protocol = make_protocol(spec);
  rng::Engine gen(99);
  const AllocationResult res = protocol->run(m, n, gen);
  // Every placement consumed at least one random bin choice.
  EXPECT_GE(res.probes, res.balls);
}

TEST_P(ProtocolInvariantTest, RerunIsIndependentOfInstanceState) {
  const auto& [spec, m, n] = GetParam();
  const auto protocol = make_protocol(spec);
  rng::Engine g1(5);
  const AllocationResult first = protocol->run(m, n, g1);
  rng::Engine g2(5);
  const AllocationResult second = protocol->run(m, n, g2);  // same instance reused
  EXPECT_EQ(first.loads, second.loads) << "protocol run() must be stateless";
}

std::vector<GridCase> build_grid() {
  const std::vector<std::string> specs = {
      "one-choice",     "greedy[2]",      "greedy[4]",
      "left[2]",        "left[4]",        "memory[1,1]",
      "memory[2,2]",    "threshold",      "threshold[2]",
      "adaptive",       "adaptive[2]",    "adaptive-net",
      "adaptive-total", "batched[4]",     "self-balancing",
      "cuckoo[2,4]",    "stale-adaptive[1]",
      "doubling-threshold[0]",            "skewed-adaptive[50]"};
  const std::vector<std::pair<std::uint64_t, std::uint32_t>> shapes = {
      {0, 7},        // no balls
      {1, 1},        // single everything
      {5, 64},       // sparse m << n
      {256, 256},    // m = n
      {2048, 256},   // heavy m = 8n
      {1000, 33},    // non-divisible m/n
  };
  // Structural constraints documented by each protocol: left/cuckoo need
  // d <= n; batched cannot place more than capacity * n balls; cuckoo's
  // outcome is degenerate (all buckets full) above ~0.8 load factor.
  const auto feasible = [](const std::string& spec, std::uint64_t m, std::uint32_t n) {
    if (spec.rfind("left[", 0) == 0) {
      return n >= static_cast<std::uint32_t>(spec[5] - '0');
    }
    if (spec.rfind("cuckoo", 0) == 0) return n >= 2 && m <= 3ULL * n;
    if (spec.rfind("batched[", 0) == 0) return m <= 4ULL * n;
    return true;
  };
  std::vector<GridCase> grid;
  for (const auto& spec : specs) {
    for (const auto& [m, n] : shapes) {
      if (feasible(spec, m, n)) grid.push_back({spec, m, n});
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(AllProtocolsAllShapes, ProtocolInvariantTest,
                         ::testing::ValuesIn(build_grid()));

TEST(ProtocolInvariants, ZeroBinsRejectedEverywhere) {
  for (const auto& spec :
       {"one-choice", "greedy[2]", "left[2]", "memory[1,1]", "threshold", "adaptive",
        "batched[2]", "self-balancing", "cuckoo[2,4]"}) {
    const auto protocol = make_protocol(spec);
    rng::Engine gen(1);
    EXPECT_THROW((void)protocol->run(10, 0, gen), std::invalid_argument) << spec;
  }
}

}  // namespace
}  // namespace bbb::core
