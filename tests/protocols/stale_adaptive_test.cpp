#include "bbb/core/protocols/stale_adaptive.hpp"

#include <gtest/gtest.h>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/rng/streams.hpp"

namespace bbb::core {
namespace {

TEST(StaleAdaptive, Validation) {
  EXPECT_THROW(StaleAdaptiveRule(0, 1), std::invalid_argument);
  EXPECT_THROW(StaleAdaptiveRule(8, 0), std::invalid_argument);
  EXPECT_THROW(StaleAdaptiveRule(8, 9), std::invalid_argument);  // delta > n
  EXPECT_THROW(StaleAdaptiveProtocol{0}, std::invalid_argument);
}

TEST(StaleAdaptive, DeltaOneIsExactlyAdaptive) {
  // With a counter published after every ball the stale protocol *is*
  // adaptive — bit-identical on the same engine.
  constexpr std::uint32_t n = 64;
  constexpr std::uint64_t m = 1000;
  rng::Engine g1(5), g2(5);
  const auto stale = StaleAdaptiveProtocol{1}.run(m, n, g1);
  const auto fresh = AdaptiveProtocol{1}.run(m, n, g2);
  EXPECT_EQ(stale.loads, fresh.loads);
  EXPECT_EQ(stale.probes, fresh.probes);
}

class StaleDeltaTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StaleDeltaTest, MaxLoadGuaranteeSurvivesStaleness) {
  const std::uint32_t delta = GetParam();
  constexpr std::uint32_t n = 256;
  constexpr std::uint64_t m = 16ULL * n + 37;  // non-divisible
  rng::Engine gen(delta * 13 + 1);
  const auto res = StaleAdaptiveProtocol{delta}.run(m, n, gen);
  EXPECT_LE(max_load(res.loads), ceil_div(m, n) + 1);
  std::uint64_t total = 0;
  for (auto l : res.loads) total += l;
  EXPECT_EQ(total, m);
}

TEST_P(StaleDeltaTest, StalenessUpToAStageIsFree) {
  // The acceptance bound ceil(i/n) is constant within a stage, so a counter
  // lagging < n balls computes the same bound for every ball: the stale
  // run must be *bit-identical* to the fresh one, for every delta <= n.
  const std::uint32_t delta = GetParam();
  constexpr std::uint32_t n = 256;
  constexpr std::uint64_t m = 16ULL * n;
  rng::Engine g1(7), g2(7);
  const auto stale = StaleAdaptiveProtocol{delta}.run(m, n, g1);
  const auto fresh = AdaptiveProtocol{1}.run(m, n, g2);
  EXPECT_EQ(stale.probes, fresh.probes) << "delta=" << delta;
  EXPECT_EQ(stale.loads, fresh.loads) << "delta=" << delta;
}

INSTANTIATE_TEST_SUITE_P(DeltaSweep, StaleDeltaTest,
                         ::testing::Values(1u, 4u, 32u, 128u, 256u));

TEST(StaleAdaptive, BoundLagsPublication) {
  constexpr std::uint32_t n = 8;
  BinState state(n);
  StaleAdaptiveRule rule(n, 8);  // publish once per stage
  rng::Engine gen(3);
  EXPECT_EQ(rule.accept_bound(), 1u);
  for (int i = 0; i < 7; ++i) {
    (void)rule.place_one(state, gen);
    EXPECT_EQ(rule.published_count(), 0u);  // not yet published
    EXPECT_EQ(rule.accept_bound(), 1u);
  }
  (void)rule.place_one(state, gen);  // 8th ball triggers publication
  EXPECT_EQ(rule.published_count(), 8u);
  EXPECT_EQ(rule.accept_bound(), 2u);
}

TEST(StaleAdaptive, NamesRoundTrip) {
  EXPECT_EQ(StaleAdaptiveProtocol{16}.name(), "stale-adaptive[16]");
}

TEST(StaleAdaptive, OncePerStageBroadcastIsIdenticalAtScale) {
  // The boundary case delta = n (one broadcast per stage) at a larger size:
  // still exactly the paper's protocol.
  constexpr std::uint32_t n = 1 << 10;
  constexpr std::uint64_t m = 8ULL * n;
  rng::Engine g1(9), g2(9);
  const auto lazy = StaleAdaptiveProtocol{n}.run(m, n, g1);
  const auto fresh = AdaptiveProtocol{1}.run(m, n, g2);
  EXPECT_EQ(lazy.probes, fresh.probes);
  EXPECT_EQ(lazy.loads, fresh.loads);
}

}  // namespace
}  // namespace bbb::core
