#include "bbb/rng/splitmix64.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bbb::rng {
namespace {

// Reference values for seed 0, as published with Java's SplittableRandom
// and the xoshiro seeding recipe.
TEST(SplitMix64, KnownAnswerSeedZero) {
  SplitMix64 g(0);
  EXPECT_EQ(g(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(g(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(g(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, StateAdvancesByGoldenGamma) {
  SplitMix64 g(7);
  const std::uint64_t before = g.state();
  (void)g();
  EXPECT_EQ(g.state(), before + 0x9e3779b97f4a7c15ULL);
}

TEST(SplitMix64, ScrambleIsInjectiveOnSample) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 4096; ++x) {
    outputs.insert(splitmix64_scramble(x));
  }
  EXPECT_EQ(outputs.size(), 4096u);
}

TEST(SplitMix64, EqualityComparesState) {
  SplitMix64 a(9), b(9);
  EXPECT_EQ(a, b);
  (void)a();
  EXPECT_NE(a, b);
  (void)b();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bbb::rng
