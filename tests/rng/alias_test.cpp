#include "bbb/rng/alias_table.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "bbb/stats/hypothesis.hpp"

namespace bbb::rng {
namespace {

TEST(AliasTable, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(AliasTable({1.0, inf}), std::invalid_argument);
}

TEST(AliasTable, SingleOutcome) {
  AliasTable t({5.0});
  Engine gen(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(t(gen), 0u);
  EXPECT_DOUBLE_EQ(t.probability(0), 1.0);
}

TEST(AliasTable, NormalizesWeights) {
  AliasTable t({2.0, 6.0});
  EXPECT_DOUBLE_EQ(t.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(t.probability(1), 0.75);
}

TEST(AliasTable, ZeroWeightOutcomeNeverDrawn) {
  AliasTable t({0.0, 1.0, 0.0, 1.0});
  Engine gen(2);
  for (int i = 0; i < 20'000; ++i) {
    const auto v = t(gen);
    EXPECT_TRUE(v == 1 || v == 3);
  }
}

TEST(AliasTable, UniformWeightsChiSquare) {
  AliasTable t(std::vector<double>(8, 1.0));
  Engine gen(3);
  std::vector<std::uint64_t> counts(8, 0);
  for (int i = 0; i < 80'000; ++i) ++counts[t(gen)];
  const auto res = stats::chi_square_gof(counts, std::vector<double>(8, 0.125));
  EXPECT_GT(res.p_value, 1e-4);
}

TEST(AliasTable, SkewedWeightsChiSquare) {
  const std::vector<double> w{1.0, 2.0, 4.0, 8.0, 16.0};
  AliasTable t(w);
  Engine gen(4);
  std::vector<std::uint64_t> counts(w.size(), 0);
  for (int i = 0; i < 100'000; ++i) ++counts[t(gen)];
  std::vector<double> expected;
  for (double x : w) expected.push_back(x / 31.0);
  const auto res = stats::chi_square_gof(counts, expected);
  EXPECT_GT(res.p_value, 1e-4) << "stat=" << res.statistic;
}

TEST(AliasTable, SizeReported) {
  AliasTable t({1.0, 1.0, 1.0});
  EXPECT_EQ(t.size(), 3u);
}

}  // namespace
}  // namespace bbb::rng
