#include "bbb/rng/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bbb/stats/hypothesis.hpp"
#include "bbb/stats/running_stats.hpp"

namespace bbb::rng {
namespace {

// ----------------------------------------------------------------- validation

TEST(DistValidation, ExponentialRejectsBadRate) {
  EXPECT_THROW(ExponentialDist(0.0), std::invalid_argument);
  EXPECT_THROW(ExponentialDist(-1.0), std::invalid_argument);
  EXPECT_NO_THROW(ExponentialDist(2.5));
}

TEST(DistValidation, NormalRejectsBadStddev) {
  EXPECT_THROW(NormalDist(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(NormalDist(0.0, -2.0), std::invalid_argument);
  EXPECT_NO_THROW(NormalDist(-5.0, 3.0));
}

TEST(DistValidation, PoissonRejectsBadLambda) {
  EXPECT_THROW(PoissonDist(-0.1), std::invalid_argument);
  EXPECT_NO_THROW(PoissonDist(0.0));
  EXPECT_NO_THROW(PoissonDist(1e6));
}

TEST(DistValidation, BinomialRejectsBadP) {
  EXPECT_THROW(BinomialDist(10, -0.1), std::invalid_argument);
  EXPECT_THROW(BinomialDist(10, 1.1), std::invalid_argument);
  EXPECT_NO_THROW(BinomialDist(0, 0.5));
}

TEST(DistValidation, GeometricRejectsBadP) {
  EXPECT_THROW(GeometricDist(0.0), std::invalid_argument);
  EXPECT_THROW(GeometricDist(1.5), std::invalid_argument);
  EXPECT_NO_THROW(GeometricDist(1.0));
}

// ---------------------------------------------------------------- exponential

TEST(Exponential, MeanMatchesRate) {
  Engine gen(100);
  ExponentialDist dist(2.0);
  stats::RunningStats s;
  for (int i = 0; i < 200'000; ++i) s.add(dist(gen));
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Exponential, AlwaysNonNegative) {
  Engine gen(101);
  ExponentialDist dist(0.5);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(dist(gen), 0.0);
}

// --------------------------------------------------------------------- normal

TEST(Normal, MomentsMatch) {
  Engine gen(102);
  NormalDist dist(3.0, 2.0);
  stats::RunningStats s;
  for (int i = 0; i < 200'000; ++i) s.add(dist(gen));
  EXPECT_NEAR(s.mean(), 3.0, 0.03);
  EXPECT_NEAR(s.stddev(), 2.0, 0.03);
}

// -------------------------------------------------------------------- poisson

TEST(Poisson, ZeroLambdaAlwaysZero) {
  Engine gen(103);
  PoissonDist dist(0.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist(gen), 0u);
}

TEST(Poisson, PmfSumsToOne) {
  PoissonDist dist(4.2);
  double total = 0;
  for (std::uint64_t k = 0; k <= 60; ++k) total += dist.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Poisson, CdfIsMonotone) {
  PoissonDist dist(7.0);
  double prev = 0.0;
  for (std::uint64_t k = 0; k <= 30; ++k) {
    const double c = dist.cdf(k);
    EXPECT_GE(c, prev - 1e-15);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
}

// GOF across the inversion / PTRS boundary. One lambda per regime.
class PoissonGofTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonGofTest, ChiSquareFitsPmf) {
  const double lambda = GetParam();
  Engine gen(static_cast<std::uint64_t>(lambda * 1000) + 7);
  PoissonDist dist(lambda);
  const auto res = stats::chi_square_fit_discrete(
      [&] { return dist(gen); }, [&](std::uint64_t k) { return dist.pmf(k); },
      100'000, static_cast<std::uint64_t>(lambda + 8 * std::sqrt(lambda) + 10));
  EXPECT_GT(res.p_value, 1e-4) << "lambda=" << lambda << " stat=" << res.statistic;
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeLambda, PoissonGofTest,
                         ::testing::Values(0.5, 2.0, 9.9,      // inversion path
                                           10.1, 42.0, 199.0 / 198.0 * 50,
                                           500.0));            // PTRS path

TEST(Poisson, MeanAndVarianceEqualLambda) {
  Engine gen(104);
  PoissonDist dist(25.0);
  stats::RunningStats s;
  for (int i = 0; i < 200'000; ++i) s.add(static_cast<double>(dist(gen)));
  EXPECT_NEAR(s.mean(), 25.0, 0.1);
  EXPECT_NEAR(s.variance(), 25.0, 0.5);
}

// ------------------------------------------------------------------- binomial

TEST(Binomial, EdgeCases) {
  Engine gen(105);
  BinomialDist zero_n(0, 0.5);
  EXPECT_EQ(zero_n(gen), 0u);
  BinomialDist p0(100, 0.0);
  EXPECT_EQ(p0(gen), 0u);
  BinomialDist p1(100, 1.0);
  EXPECT_EQ(p1(gen), 100u);
}

TEST(Binomial, PmfSumsToOne) {
  BinomialDist dist(30, 0.37);
  double total = 0;
  for (std::uint64_t k = 0; k <= 30; ++k) total += dist.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-10);
}

struct BinomialCase {
  std::uint64_t n;
  double p;
};

class BinomialGofTest : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialGofTest, ChiSquareFitsPmf) {
  const auto [n, p] = GetParam();
  Engine gen(n * 31 + 17);
  BinomialDist dist(n, p);
  const auto res = stats::chi_square_fit_discrete(
      [&] { return dist(gen); }, [&](std::uint64_t k) { return dist.pmf(k); },
      100'000, n + 1);
  EXPECT_GT(res.p_value, 1e-4) << "n=" << n << " p=" << p << " stat=" << res.statistic;
}

INSTANTIATE_TEST_SUITE_P(InversionAndBtrs, BinomialGofTest,
                         ::testing::Values(BinomialCase{20, 0.1},   // BINV
                                           BinomialCase{20, 0.9},   // BINV, flipped
                                           BinomialCase{50, 0.5},   // BTRS
                                           BinomialCase{200, 0.3},  // BTRS
                                           BinomialCase{200, 0.97}  // BTRS, flipped
                                           ));

TEST(Binomial, NeverExceedsN) {
  Engine gen(106);
  BinomialDist dist(37, 0.8);
  for (int i = 0; i < 20'000; ++i) EXPECT_LE(dist(gen), 37u);
}

// ------------------------------------------------------------------ geometric

TEST(Geometric, AlwaysAtLeastOne) {
  Engine gen(107);
  GeometricDist dist(0.3);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(dist(gen), 1u);
}

TEST(Geometric, PEqualOneAlwaysOne) {
  Engine gen(108);
  GeometricDist dist(1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist(gen), 1u);
}

TEST(Geometric, MeanIsInverseP) {
  Engine gen(109);
  GeometricDist dist(0.25);
  stats::RunningStats s;
  for (int i = 0; i < 200'000; ++i) s.add(static_cast<double>(dist(gen)));
  EXPECT_NEAR(s.mean(), 4.0, 0.05);
}

// ------------------------------------------------------- Poisson survival sf

TEST(PoissonSf, MatchesCdfComplementAtModerateLambda) {
  for (const double lambda : {0.5, 1.0, 4.0, 20.0}) {
    const PoissonDist dist(lambda);
    for (std::uint64_t k = 1; k <= 40; ++k) {
      EXPECT_NEAR(dist.sf(k), 1.0 - dist.cdf(k - 1), 1e-12)
          << "lambda " << lambda << " k " << k;
    }
  }
}

TEST(PoissonSf, EdgeCases) {
  EXPECT_DOUBLE_EQ(PoissonDist(3.0).sf(0), 1.0);  // P(X >= 0) is certain
  EXPECT_DOUBLE_EQ(PoissonDist(0.0).sf(0), 1.0);
  EXPECT_DOUBLE_EQ(PoissonDist(0.0).sf(1), 0.0);  // lambda 0 never moves
  EXPECT_DOUBLE_EQ(PoissonDist(0.0).sf(100), 0.0);
}

TEST(PoissonSf, MonotoneNonIncreasingInK) {
  const PoissonDist dist(7.5);
  double prev = 1.0;
  for (std::uint64_t k = 0; k <= 60; ++k) {
    const double s = dist.sf(k);
    EXPECT_LE(s, prev + 1e-15) << "k " << k;
    EXPECT_GE(s, 0.0);
    prev = s;
  }
}

// Deep in the right tail 1 - cdf cancels to garbage; sf must instead agree
// with the positive-term identity sf(k) = pmf(k) (1 + lambda/(k+1) + ...),
// which is bracketed by pmf(k) and pmf(k) / (1 - lambda/(k+1)).
TEST(PoissonSf, DeepTailKeepsRelativePrecision) {
  const PoissonDist dist(1.0);
  for (const std::uint64_t k : {50ull, 100ull, 140ull}) {
    const double s = dist.sf(k);
    const double p = dist.pmf(k);
    EXPECT_GT(s, 0.0) << "k " << k;
    EXPECT_GE(s, p);
    EXPECT_LE(s, p / (1.0 - 1.0 / static_cast<double>(k + 1)) * (1.0 + 1e-12));
  }
}

// The law tier's regime: lambda in the millions. The median sits within
// O(1) of lambda (sf(lambda) ~ 1/2) and the tails keep full precision
// without the O(lambda) term-by-term cdf walk ever running.
TEST(PoissonSf, HugeLambdaIsFastAndCalibrated) {
  const double lambda = 1048576.0;  // 2^20
  const PoissonDist dist(lambda);
  EXPECT_NEAR(dist.sf(1 << 20), 0.5, 0.01);
  // Six sigma out: compare against the normal tail by order of magnitude.
  const std::uint64_t k6 = (1 << 20) + 6 * 1024;
  const double s6 = dist.sf(k6);
  EXPECT_GT(s6, 1e-12);
  EXPECT_LT(s6, 1e-8);  // Phi(-6) ~ 1e-9
  // And the identity sf + cdf = 1 holds through the bulk.
  EXPECT_NEAR(dist.sf(k6) + dist.cdf(k6 - 1), 1.0, 1e-9);
}

TEST(Geometric, ChiSquareFitsPmf) {
  Engine gen(110);
  GeometricDist dist(0.4);
  // Support starts at 1; pass pmf(k) with pmf(0) = 0.
  const auto res = stats::chi_square_fit_discrete(
      [&] { return dist(gen); },
      [&](std::uint64_t k) {
        if (k == 0) return 0.0;
        return 0.4 * std::pow(0.6, static_cast<double>(k - 1));
      },
      100'000, 25);
  EXPECT_GT(res.p_value, 1e-4) << "stat=" << res.statistic;
}

}  // namespace
}  // namespace bbb::rng
