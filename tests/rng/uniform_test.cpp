#include <gtest/gtest.h>

#include <vector>

#include "bbb/rng/engine.hpp"
#include "bbb/rng/pcg32.hpp"
#include "bbb/rng/xoshiro256.hpp"
#include "bbb/stats/hypothesis.hpp"

namespace bbb::rng {
namespace {

TEST(UniformBelow, AlwaysBelowBound) {
  Engine gen(1);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(uniform_below(gen, bound), bound);
    }
  }
}

TEST(UniformBelow, BoundOneAlwaysZero) {
  Engine gen(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_below(gen, 1), 0u);
}

TEST(UniformBelow, ChiSquareUniformity) {
  Engine gen(3);
  constexpr std::uint64_t kCells = 10;
  constexpr std::uint64_t kSamples = 100'000;
  std::vector<std::uint64_t> counts(kCells, 0);
  for (std::uint64_t i = 0; i < kSamples; ++i) ++counts[uniform_below(gen, kCells)];
  const std::vector<double> expected(kCells, 1.0 / kCells);
  const auto res = stats::chi_square_gof(counts, expected);
  EXPECT_GT(res.p_value, 1e-4) << "statistic=" << res.statistic;
}

TEST(UniformBelow, WorksWithPcg32Engine) {
  Pcg32 gen(11, 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(uniform_below(gen, 17), 17u);
  }
}

TEST(UniformRange, HitsBothEndpoints) {
  Engine gen(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = uniform_range(gen, 5, 8);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(UniformRange, DegenerateRange) {
  Engine gen(5);
  EXPECT_EQ(uniform_range(gen, 9, 9), 9u);
}

TEST(NextDouble, InHalfOpenUnitInterval) {
  Engine gen(6);
  for (int i = 0; i < 100'000; ++i) {
    const double u = next_double(gen);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(NextDouble, MeanIsHalf) {
  Engine gen(7);
  double acc = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) acc += next_double(gen);
  EXPECT_NEAR(acc / kN, 0.5, 0.005);
}

TEST(NextDoubleNonzero, StrictlyPositive) {
  Engine gen(8);
  for (int i = 0; i < 100'000; ++i) {
    const double u = next_double_nonzero(gen);
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST(Bernoulli, ZeroAndOneAreDeterministic) {
  Engine gen(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(bernoulli(gen, 0.0));
    EXPECT_TRUE(bernoulli(gen, 1.0));
  }
}

TEST(Bernoulli, FrequencyTracksP) {
  Engine gen(10);
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    if (bernoulli(gen, 0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

}  // namespace
}  // namespace bbb::rng
