#include "bbb/rng/zipf.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "bbb/stats/hypothesis.hpp"

namespace bbb::rng {
namespace {

TEST(Zipf, Validation) {
  EXPECT_THROW((void)zipf_weights(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)zipf_weights(4, -0.5), std::invalid_argument);
  EXPECT_THROW(ZipfDist(0, 1.0), std::invalid_argument);
}

TEST(Zipf, WeightsNormalizedAndDecreasing) {
  const auto w = zipf_weights(10, 1.2);
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-12);
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_LT(w[i], w[i - 1]);
}

TEST(Zipf, SZeroIsUniform) {
  const auto w = zipf_weights(8, 0.0);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 0.125);
}

TEST(Zipf, ClassicRatio) {
  // s = 1: weight of outcome 0 is twice that of outcome 1.
  const auto w = zipf_weights(100, 1.0);
  EXPECT_NEAR(w[0] / w[1], 2.0, 1e-12);
  EXPECT_NEAR(w[0] / w[9], 10.0, 1e-9);
}

TEST(Zipf, SamplerMatchesWeightsChiSquare) {
  ZipfDist dist(6, 0.8);
  Engine gen(5);
  std::vector<std::uint64_t> counts(6, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[dist(gen)];
  std::vector<double> expected;
  for (std::size_t i = 0; i < 6; ++i) expected.push_back(dist.probability(i));
  const auto res = stats::chi_square_gof(counts, expected);
  EXPECT_GT(res.p_value, 1e-4) << "stat=" << res.statistic;
}

TEST(Zipf, AccessorsReport) {
  ZipfDist dist(16, 1.5);
  EXPECT_EQ(dist.k(), 16u);
  EXPECT_DOUBLE_EQ(dist.s(), 1.5);
}

}  // namespace
}  // namespace bbb::rng
