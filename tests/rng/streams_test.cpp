#include "bbb/rng/streams.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bbb::rng {
namespace {

TEST(Streams, DeriveSeedIsDeterministic) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
}

TEST(Streams, DeriveSeedVariesWithIndex) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 10'000; ++i) seeds.insert(derive_seed(42, i));
  EXPECT_EQ(seeds.size(), 10'000u);
}

TEST(Streams, DeriveSeedVariesWithMaster) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t m = 0; m < 10'000; ++m) seeds.insert(derive_seed(m, 0));
  EXPECT_EQ(seeds.size(), 10'000u);
}

TEST(Streams, SequentialIndicesAreDecorrelated) {
  // Child engines of adjacent indices should not produce matching prefixes.
  SeedSequence seq(123);
  Engine a = seq.engine(0);
  Engine b = seq.engine(1);
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Streams, EngineReproducible) {
  SeedSequence seq(9);
  Engine a = seq.engine(5);
  Engine b = seq.engine(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Streams, SeedMatchesDeriveSeed) {
  SeedSequence seq(77);
  EXPECT_EQ(seq.seed(3), derive_seed(77, 3));
  EXPECT_EQ(seq.master(), 77u);
}

}  // namespace
}  // namespace bbb::rng
