/// Regression pins for the engines and the stream-derivation scheme.
///
/// Every experiment in EXPERIMENTS.md was produced with these exact output
/// sequences; if any of these tests fails, the change silently invalidates
/// all recorded results (and every "same seed => same loads" expectation in
/// downstream projects). The values were captured from this implementation
/// at v1.0 — they are *pins*, not external test vectors (SplitMix64's
/// known-answer vectors live in splitmix64_test.cpp).

#include <gtest/gtest.h>

#include "bbb/rng/pcg32.hpp"
#include "bbb/rng/splitmix64.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::rng {
namespace {

// Seeds 0 and 42 for both engines, matching the SplitMix64 pin pair below:
// seed 0 exercises the all-zero-state seeding path (SplitMix64 expansion
// must keep the engine state nonzero), seed 42 is the implementation pin
// every recorded experiment used.
TEST(GoldenPins, Xoshiro256Seed0) {
  Xoshiro256PlusPlus gen(0);
  EXPECT_EQ(gen(), 0x53175d61490b23dfULL);
  EXPECT_EQ(gen(), 0x61da6f3dc380d507ULL);
  EXPECT_EQ(gen(), 0x5c0fdf91ec9a7bfcULL);
  EXPECT_EQ(gen(), 0x02eebf8c3bbe5e1aULL);
}

TEST(GoldenPins, Xoshiro256Seed42) {
  Xoshiro256PlusPlus gen(42);
  EXPECT_EQ(gen(), 0xd0764d4f4476689fULL);
  EXPECT_EQ(gen(), 0x519e4174576f3791ULL);
  EXPECT_EQ(gen(), 0xfbe07cfb0c24ed8cULL);
  EXPECT_EQ(gen(), 0xb37d9f600cd835b8ULL);
}

TEST(GoldenPins, Pcg32Seed0Stream0) {
  Pcg32 gen(0, 0);
  EXPECT_EQ(gen.next_u32(), 0xe4c14788u);
  EXPECT_EQ(gen.next_u32(), 0x379c6516u);
  EXPECT_EQ(gen.next_u32(), 0x5c4ab3bbu);
  EXPECT_EQ(gen.next_u32(), 0x601d23e0u);
}

TEST(GoldenPins, Pcg32Seed42Stream0) {
  Pcg32 gen(42, 0);
  EXPECT_EQ(gen.next_u32(), 0x21b756eeu);
  EXPECT_EQ(gen.next_u32(), 0xc15ef750u);
  EXPECT_EQ(gen.next_u32(), 0x9548a9bdu);
  EXPECT_EQ(gen.next_u32(), 0x35db428du);
}

// First four outputs for seed 0 (the published SplittableRandom / xoshiro
// seeding vectors) and for seed 42 (implementation pin). SplitMix64 seeds
// both engines above AND derives every replicate stream, so a silent
// cross-platform divergence here would shift every recorded experiment.
TEST(GoldenPins, SplitMix64SeedZero) {
  SplitMix64 gen(0);
  EXPECT_EQ(gen(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(gen(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(gen(), 0x06c45d188009454fULL);
  EXPECT_EQ(gen(), 0xf88bb8a8724c81ecULL);
}

TEST(GoldenPins, SplitMix64Seed42) {
  SplitMix64 gen(42);
  EXPECT_EQ(gen(), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(gen(), 0x28efe333b266f103ULL);
  EXPECT_EQ(gen(), 0x47526757130f9f52ULL);
  EXPECT_EQ(gen(), 0x581ce1ff0e4ae394ULL);
}

TEST(GoldenPins, DeriveSeedMaster42) {
  EXPECT_EQ(derive_seed(42, 0), 0x34f0b9acbcef321fULL);
  EXPECT_EQ(derive_seed(42, 1), 0xe327554e5c585148ULL);
}

}  // namespace
}  // namespace bbb::rng

#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/core/protocols/threshold.hpp"

namespace bbb::core {
namespace {

// End-to-end pins: engine -> Lemire bounded uniform -> protocol logic.
// A change anywhere in that chain moves these loads.
TEST(GoldenPins, AdaptiveSeed42M100N10) {
  rng::Engine gen(42);
  const auto res = AdaptiveProtocol{}.run(100, 10, gen);
  EXPECT_EQ(res.loads,
            (std::vector<std::uint32_t>{9, 10, 11, 9, 10, 8, 11, 10, 11, 11}));
  EXPECT_EQ(res.probes, 131u);
}

TEST(GoldenPins, ThresholdSeed42M100N10) {
  rng::Engine gen(42);
  const auto res = ThresholdProtocol{}.run(100, 10, gen);
  EXPECT_EQ(res.loads,
            (std::vector<std::uint32_t>{10, 11, 10, 6, 9, 11, 11, 11, 11, 10}));
  EXPECT_EQ(res.probes, 104u);
}

}  // namespace
}  // namespace bbb::core
