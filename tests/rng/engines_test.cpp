#include <gtest/gtest.h>

#include <array>
#include <set>

#include "bbb/rng/pcg32.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::rng {
namespace {

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256PlusPlus a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, SeedsProduceDistinctStreams) {
  Xoshiro256PlusPlus a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);  // coincidences are ~2^-64 each
}

TEST(Xoshiro256, ExplicitStateRoundTrips) {
  const std::array<std::uint64_t, 4> state{1, 2, 3, 4};
  Xoshiro256PlusPlus a(state), b(state);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, JumpLeavesOriginalSequenceUntouched) {
  Xoshiro256PlusPlus base(7);
  Xoshiro256PlusPlus jumped = base;
  jumped.jump();
  // The jumped stream must not collide with the near future of the base.
  std::set<std::uint64_t> base_prefix;
  for (int i = 0; i < 1000; ++i) base_prefix.insert(base());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (base_prefix.count(jumped())) ++collisions;
  }
  EXPECT_LE(collisions, 1);
}

TEST(Xoshiro256, LongJumpDiffersFromJump) {
  Xoshiro256PlusPlus a(7), b(7);
  a.jump();
  b.long_jump();
  EXPECT_NE(a(), b());
}

TEST(Xoshiro256, MinMaxBounds) {
  EXPECT_EQ(Xoshiro256PlusPlus::min(), 0u);
  EXPECT_EQ(Xoshiro256PlusPlus::max(), ~std::uint64_t{0});
}

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(99, 1), b(99, 1);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(99, 1), b(99, 2);
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Pcg32, AdvanceMatchesSequentialDraws) {
  Pcg32 a(123, 5), b(123, 5);
  for (int i = 0; i < 137; ++i) (void)a.next_u32();
  b.advance(137);
  EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, AdvanceZeroIsIdentity) {
  Pcg32 a(123, 5), b(123, 5);
  b.advance(0);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bbb::rng
