#include "bbb/stats/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bbb/rng/distributions.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::stats {
namespace {

TEST(LinearFit, RecoversExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double xi : x) y.push_back(2.5 * xi - 1.0);
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.n, 5u);
}

TEST(LinearFit, NoisyDataHasLowerR2) {
  rng::Engine gen(3);
  rng::NormalDist noise(0.0, 5.0);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(0.5 * i + noise(gen));
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.05);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.r_squared, 0.5);
}

TEST(LinearFit, Validation) {
  EXPECT_THROW((void)linear_fit({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)linear_fit({1, 2}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)linear_fit({3, 3, 3}, {1, 2, 3}), std::invalid_argument);
}

TEST(PowerLawFit, RecoversExactPowerLaw) {
  std::vector<double> x, y;
  for (double xi : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    x.push_back(xi);
    y.push_back(3.0 * std::pow(xi, 1.5));
  }
  const PowerLawFit fit = power_law_fit(x, y);
  EXPECT_NEAR(fit.exponent, 1.5, 1e-10);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-8);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(PowerLawFit, RecoversNegativeExponent) {
  std::vector<double> x, y;
  for (double xi : {1.0, 10.0, 100.0, 1000.0}) {
    x.push_back(xi);
    y.push_back(7.0 / xi);
  }
  const PowerLawFit fit = power_law_fit(x, y);
  EXPECT_NEAR(fit.exponent, -1.0, 1e-10);
  EXPECT_NEAR(fit.coefficient, 7.0, 1e-8);
}

TEST(PowerLawFit, RejectsNonPositiveValues) {
  EXPECT_THROW((void)power_law_fit({0.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)power_law_fit({1.0, 2.0}, {-1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace bbb::stats
