#include "bbb/stats/special_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bbb::stats {
namespace {

TEST(Gamma, PAndQSumToOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 5.0, 25.0, 80.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(Gamma, KnownExponentialSpecialCase) {
  // For a = 1, P(1, x) = 1 - exp(-x).
  for (double x : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(Gamma, BoundaryValues) {
  EXPECT_DOUBLE_EQ(gamma_p(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(3.0, 0.0), 1.0);
  EXPECT_THROW((void)gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)gamma_q(1.0, -1.0), std::invalid_argument);
}

TEST(ChiSquare, KnownCriticalValues) {
  // Classic table entries: chi2(df=1) upper 5% point = 3.841,
  // chi2(df=2) sf(x) = exp(-x/2), chi2(df=10) upper 5% = 18.307.
  EXPECT_NEAR(chi_square_sf(3.841, 1.0), 0.05, 2e-4);
  EXPECT_NEAR(chi_square_sf(4.0, 2.0), std::exp(-2.0), 1e-10);
  EXPECT_NEAR(chi_square_sf(18.307, 10.0), 0.05, 2e-4);
}

TEST(ChiSquare, EdgeBehaviour) {
  EXPECT_DOUBLE_EQ(chi_square_sf(0.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(chi_square_sf(-3.0, 5.0), 1.0);
  EXPECT_LT(chi_square_sf(1000.0, 5.0), 1e-100);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-4);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-4);
  EXPECT_NEAR(normal_sf(1.6449), 0.05, 1e-4);
}

TEST(NormalCdf, Symmetry) {
  for (double z : {0.3, 1.1, 2.7}) {
    EXPECT_NEAR(normal_cdf(z) + normal_cdf(-z), 1.0, 1e-14);
    EXPECT_NEAR(normal_sf(z), normal_cdf(-z), 1e-14);
  }
}

TEST(LogFactorial, SmallValuesExact) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-9);
}

}  // namespace
}  // namespace bbb::stats
