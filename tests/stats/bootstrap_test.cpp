#include "bbb/stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include "bbb/rng/distributions.hpp"
#include "bbb/rng/xoshiro256.hpp"
#include "bbb/stats/quantile.hpp"

namespace bbb::stats {
namespace {

TEST(Bootstrap, MeanCiCoversTrueMean) {
  rng::Engine gen(11);
  rng::NormalDist normal(5.0, 2.0);
  std::vector<double> data;
  for (int i = 0; i < 400; ++i) data.push_back(normal(gen));
  const Interval iv = bootstrap_mean_ci(data, 2000, 0.95, 7);
  EXPECT_LT(iv.lo, 5.0);
  EXPECT_GT(iv.hi, 5.0);
  EXPECT_LT(iv.lo, iv.point);
  EXPECT_GT(iv.hi, iv.point);
}

TEST(Bootstrap, WiderConfidenceGivesWiderInterval) {
  rng::Engine gen(12);
  std::vector<double> data;
  for (int i = 0; i < 100; ++i) data.push_back(rng::next_double(gen));
  const Interval narrow = bootstrap_mean_ci(data, 2000, 0.80, 3);
  const Interval wide = bootstrap_mean_ci(data, 2000, 0.99, 3);
  EXPECT_GT(wide.hi - wide.lo, narrow.hi - narrow.lo);
}

TEST(Bootstrap, CustomStatistic) {
  std::vector<double> data{1, 2, 3, 4, 100};
  const Interval iv = bootstrap_ci(
      data, [](const std::vector<double>& xs) { return exact_quantile(xs, 0.5); }, 1000,
      0.95, 5);
  // Median resamples stay within the data range.
  EXPECT_GE(iv.lo, 1.0);
  EXPECT_LE(iv.hi, 100.0);
  EXPECT_DOUBLE_EQ(iv.point, 3.0);
}

TEST(Bootstrap, DeterministicForFixedSeed) {
  std::vector<double> data{3, 1, 4, 1, 5, 9, 2, 6};
  const Interval a = bootstrap_mean_ci(data, 500, 0.9, 42);
  const Interval b = bootstrap_mean_ci(data, 500, 0.9, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, Validation) {
  EXPECT_THROW((void)bootstrap_mean_ci({}, 100, 0.9, 1), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci({1.0}, 0, 0.9, 1), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci({1.0}, 100, 1.5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace bbb::stats
