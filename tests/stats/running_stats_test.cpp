#include "bbb/stats/running_stats.hpp"

#include <gtest/gtest.h>

#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::stats {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, SingleObservation) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownSmallSample) {
  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population var 4, sample var 32/7.
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats whole, first, second;
  rng::Engine gen(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng::next_double(gen) * 10.0 - 3.0;
    whole.add(x);
    (i < 400 ? first : second).add(x);
  }
  first.merge(second);
  EXPECT_EQ(first.count(), whole.count());
  EXPECT_NEAR(first.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(first.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(first.min(), whole.min());
  EXPECT_DOUBLE_EQ(first.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs: adopt rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, large;
  rng::Engine gen(6);
  for (int i = 0; i < 10; ++i) small.add(rng::next_double(gen));
  for (int i = 0; i < 10'000; ++i) large.add(rng::next_double(gen));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  // Classic catastrophic-cancellation case for naive sum-of-squares.
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 10.0, 1e-3);
  EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

}  // namespace
}  // namespace bbb::stats
