#include "bbb/stats/histogram.hpp"

#include <gtest/gtest.h>

namespace bbb::stats {
namespace {

TEST(IntHistogram, EmptyState) {
  IntHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(5), 0u);
  EXPECT_EQ(h.render_ascii(), "(empty histogram)\n");
}

TEST(IntHistogram, CountsAndRange) {
  IntHistogram h;
  h.add(3);
  h.add(3);
  h.add(-1);
  h.add(7, 4);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.min(), -1);
  EXPECT_EQ(h.max(), 7);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(7), 4u);
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(3), 2.0 / 7.0);
}

TEST(IntHistogram, AddAllAndMean) {
  IntHistogram h;
  h.add_all({1, 2, 3, 4});
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(IntHistogram, ZeroCountAddIsNoop) {
  IntHistogram h;
  h.add(9, 0);
  EXPECT_TRUE(h.empty());
}

TEST(IntHistogram, MergeAddsCounts) {
  IntHistogram a, b;
  a.add(1, 2);
  b.add(1, 3);
  b.add(5);
  a.merge(b);
  EXPECT_EQ(a.count(1), 5u);
  EXPECT_EQ(a.count(5), 1u);
  EXPECT_EQ(a.total(), 6u);
}

TEST(IntHistogram, QuantileOnKnownData) {
  IntHistogram h;
  for (int v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.5), 50);
  EXPECT_EQ(h.quantile(0.99), 99);
  EXPECT_EQ(h.quantile(1.0), 100);
}

TEST(IntHistogram, ItemsFillGaps) {
  IntHistogram h;
  h.add(2);
  h.add(5);
  const auto items = h.items();
  ASSERT_EQ(items.size(), 4u);  // 2,3,4,5
  EXPECT_EQ(items[0], (std::pair<std::int64_t, std::uint64_t>{2, 1}));
  EXPECT_EQ(items[1].second, 0u);
  EXPECT_EQ(items[2].second, 0u);
  EXPECT_EQ(items[3], (std::pair<std::int64_t, std::uint64_t>{5, 1}));
}

TEST(IntHistogram, AsciiRenderContainsBars) {
  IntHistogram h;
  h.add(0, 10);
  h.add(1, 5);
  const std::string out = h.render_ascii(20);
  EXPECT_NE(out.find("####################"), std::string::npos);  // peak row
  EXPECT_NE(out.find("##########"), std::string::npos);            // half row
}

}  // namespace
}  // namespace bbb::stats
