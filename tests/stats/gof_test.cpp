#include "bbb/stats/gof.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "bbb/rng/distributions.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::stats {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// -------------------------------------------------------------- ks_statistic

TEST(KsStatistic, ExactSmallCases) {
  // Disjoint supports: the CDFs separate completely, D = 1.
  EXPECT_DOUBLE_EQ(ks_statistic({1.0, 2.0}, {5.0, 6.0}), 1.0);
  // Identical samples: D = 0.
  EXPECT_DOUBLE_EQ(ks_statistic({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 0.0);
  // a = {1, 3}, b = {2, 4}: after x = 1, F_a = 1/2, F_b = 0 -> D = 1/2 (the
  // gap never widens: the CDFs alternate steps of 1/2).
  EXPECT_DOUBLE_EQ(ks_statistic({1.0, 3.0}, {2.0, 4.0}), 0.5);
  // Unequal sizes: a = {1}, b = {1, 2}. After x = 1: F_a = 1, F_b = 1/2.
  EXPECT_DOUBLE_EQ(ks_statistic({1.0}, {1.0, 2.0}), 0.5);
}

TEST(KsStatistic, Symmetry) {
  const std::vector<double> a{0.3, 1.7, 2.2, 5.0, 5.0};
  const std::vector<double> b{0.1, 1.9, 3.3};
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), ks_statistic(b, a));
}

TEST(KsStatistic, RejectsEmptyAndNaN) {
  EXPECT_THROW((void)ks_statistic({}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)ks_statistic({1.0}, {}), std::invalid_argument);
  EXPECT_THROW((void)ks_statistic({1.0, kNaN}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)ks_statistic({1.0}, {kNaN}), std::invalid_argument);
}

// ------------------------------------------------------------------ ks_counts

TEST(KsCounts, ExactSmallCases) {
  // Identical rows: D = 0, p = 1.
  const auto same = ks_counts({10, 20, 30}, {10, 20, 30});
  EXPECT_DOUBLE_EQ(same.statistic, 0.0);
  EXPECT_DOUBLE_EQ(same.p_value, 1.0);
  // a all in cell 0, b all in cell 1: CDFs are (1, 1) vs (0, 1) -> D = 1.
  const auto far = ks_counts({50, 0}, {0, 50});
  EXPECT_DOUBLE_EQ(far.statistic, 1.0);
  EXPECT_LT(far.p_value, 1e-6);
  // a = {30, 10}, b = {20, 20}: CDFs (0.75, 1) vs (0.5, 1) -> D = 0.25.
  EXPECT_DOUBLE_EQ(ks_counts({30, 10}, {20, 20}).statistic, 0.25);
}

TEST(KsCounts, SymmetryAndScaleInvariance) {
  const std::vector<std::uint64_t> a{5, 30, 40, 20, 5};
  const std::vector<std::uint64_t> b{8, 25, 45, 18, 4};
  EXPECT_DOUBLE_EQ(ks_counts(a, b).statistic, ks_counts(b, a).statistic);
  // Doubling one row's counts leaves its empirical CDF (hence D) unchanged.
  std::vector<std::uint64_t> a2;
  for (const auto c : a) a2.push_back(2 * c);
  EXPECT_DOUBLE_EQ(ks_counts(a2, b).statistic, ks_counts(a, b).statistic);
}

TEST(KsCounts, RejectsBadInput) {
  EXPECT_THROW((void)ks_counts({}, {}), std::invalid_argument);
  EXPECT_THROW((void)ks_counts({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW((void)ks_counts({0, 0}, {1, 2}), std::invalid_argument);
  EXPECT_THROW((void)ks_counts({1, 2}, {0, 0}), std::invalid_argument);
}

// ------------------------------------------------------ chi_square_homogeneity

TEST(ChiSquareHomogeneity, ExactSmallCaseByHand) {
  // a = {10, 10}, b = {5, 15}: totals 20/20, columns 15/25. Expected
  // counts are 7.5/12.5 in both rows, so
  //   chi2 = 2 * (2.5^2/7.5) + 2 * (2.5^2/12.5) = 5/3 + 1 = 8/3,  df = 1.
  const auto res = chi_square_homogeneity({10, 10}, {5, 15}, 1.0);
  EXPECT_NEAR(res.statistic, 8.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(res.df, 1.0);
  EXPECT_EQ(res.pooled_cells, 0u);
  EXPECT_GT(res.p_value, 0.05);  // chi2(1) >= 2.667 has p ~ 0.102
  EXPECT_LT(res.p_value, 0.2);
}

TEST(ChiSquareHomogeneity, IdenticalRowsScoreZero) {
  const auto res = chi_square_homogeneity({40, 30, 30}, {40, 30, 30});
  EXPECT_DOUBLE_EQ(res.statistic, 0.0);
  EXPECT_DOUBLE_EQ(res.p_value, 1.0);
}

TEST(ChiSquareHomogeneity, Symmetry) {
  const std::vector<std::uint64_t> a{12, 40, 33, 15};
  const std::vector<std::uint64_t> b{20, 35, 30, 15};
  const auto ab = chi_square_homogeneity(a, b);
  const auto ba = chi_square_homogeneity(b, a);
  EXPECT_NEAR(ab.statistic, ba.statistic, 1e-12);
  EXPECT_DOUBLE_EQ(ab.df, ba.df);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
}

TEST(ChiSquareHomogeneity, PoolsSparseCells) {
  // Tail cells with tiny expected counts must merge; df drops accordingly.
  const auto res = chi_square_homogeneity({100, 50, 1, 0, 1}, {95, 55, 0, 1, 1});
  EXPECT_GT(res.pooled_cells, 0u);
  EXPECT_LT(res.df, 4.0);
  EXPECT_GT(res.p_value, 0.01);
}

TEST(ChiSquareHomogeneity, RejectsBadInput) {
  EXPECT_THROW((void)chi_square_homogeneity({}, {}), std::invalid_argument);
  EXPECT_THROW((void)chi_square_homogeneity({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW((void)chi_square_homogeneity({0, 0}, {1, 2}), std::invalid_argument);
  // One giant cell: nothing to compare after pooling.
  EXPECT_THROW((void)chi_square_homogeneity({100}, {100}), std::invalid_argument);
}

// Same-distribution calibration: two independent binomial-count rows should
// (almost always) pass at the 1e-3 level.
TEST(ChiSquareHomogeneity, AcceptsSameDistribution) {
  rng::Engine gen(7);
  const rng::BinomialDist dist(40, 0.3);
  std::vector<std::uint64_t> a(41, 0), b(41, 0);
  for (int i = 0; i < 4000; ++i) ++a[dist(gen)];
  for (int i = 0; i < 4000; ++i) ++b[dist(gen)];
  EXPECT_GT(chi_square_homogeneity(a, b).p_value, 1e-3);
  EXPECT_GT(ks_counts(a, b).p_value, 1e-3);
}

// Power check: clearly different distributions must be rejected.
TEST(ChiSquareHomogeneity, RejectsDifferentDistribution) {
  rng::Engine gen(7);
  const rng::BinomialDist pa(40, 0.3);
  const rng::BinomialDist pb(40, 0.4);
  std::vector<std::uint64_t> a(41, 0), b(41, 0);
  for (int i = 0; i < 4000; ++i) ++a[pa(gen)];
  for (int i = 0; i < 4000; ++i) ++b[pb(gen)];
  EXPECT_LT(chi_square_homogeneity(a, b).p_value, 1e-6);
  EXPECT_LT(ks_counts(a, b).p_value, 1e-6);
}

}  // namespace
}  // namespace bbb::stats
