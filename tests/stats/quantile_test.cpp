#include "bbb/stats/quantile.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "bbb/rng/distributions.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::stats {
namespace {

TEST(ExactQuantile, KnownValues) {
  const std::vector<double> data{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(exact_quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_quantile(data, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(exact_quantile(data, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(exact_quantile(data, 0.25), 2.0);
  // Interpolated: between 1 and 2 at q = 0.1 -> 1.4 (type-7).
  EXPECT_NEAR(exact_quantile(data, 0.1), 1.4, 1e-12);
}

TEST(ExactQuantile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(exact_quantile({5, 1, 3, 2, 4}, 0.5), 3.0);
}

TEST(ExactQuantile, Validation) {
  EXPECT_THROW((void)exact_quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)exact_quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)exact_quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(ExactQuantile, BoundariesAndSizeOne) {
  // q = 0 and q = 1 are exactly the extreme order statistics, and a
  // single-element vector is a fixed point for every q — no interpolation
  // index may step outside the data.
  const std::vector<double> data{7.0, -2.0, 11.0, 3.0};
  EXPECT_DOUBLE_EQ(exact_quantile(data, 0.0), -2.0);
  EXPECT_DOUBLE_EQ(exact_quantile(data, 1.0), 11.0);
  for (const double q : {0.0, 0.25, 0.5, 0.9999999999999999, 1.0}) {
    EXPECT_DOUBLE_EQ(exact_quantile({42.0}, q), 42.0) << "q=" << q;
  }
  // q just below 1: interpolates inside the data, never past the end.
  const double near_one = exact_quantile(data, 0.9999999999999999);
  EXPECT_GE(near_one, 3.0);
  EXPECT_LE(near_one, 11.0);
}

TEST(ExactQuantile, RejectsNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)exact_quantile({1.0, nan, 3.0}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)exact_quantile({nan}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)exact_quantile({1.0, 2.0}, nan), std::invalid_argument);
  // Infinities are ordered fine and stay legal.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(exact_quantile({-inf, 0.0, inf}, 0.5), 0.0);
}

TEST(P2Quantile, RejectsDegenerateQ) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

TEST(P2Quantile, ThrowsBeforeAnyObservation) {
  P2Quantile q(0.5);
  EXPECT_THROW((void)q.value(), std::logic_error);
}

TEST(P2Quantile, ExactDuringWarmup) {
  P2Quantile q(0.5);
  q.add(10.0);
  EXPECT_DOUBLE_EQ(q.value(), 10.0);
  q.add(20.0);
  q.add(30.0);
  EXPECT_DOUBLE_EQ(q.value(), 20.0);
}

class P2AccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(P2AccuracyTest, TracksExactQuantileOnNormalData) {
  const double target_q = GetParam();
  rng::Engine gen(42);
  rng::NormalDist normal(0.0, 1.0);
  P2Quantile p2(target_q);
  std::vector<double> all;
  constexpr int kN = 50'000;
  all.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    const double x = normal(gen);
    p2.add(x);
    all.push_back(x);
  }
  const double exact = exact_quantile(std::move(all), target_q);
  EXPECT_NEAR(p2.value(), exact, 0.05) << "q=" << target_q;
}

INSTANTIATE_TEST_SUITE_P(CommonQuantiles, P2AccuracyTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.99));

TEST(P2Quantile, CountTracksObservations) {
  P2Quantile q(0.5);
  for (int i = 0; i < 17; ++i) q.add(i);
  EXPECT_EQ(q.count(), 17u);
}

}  // namespace
}  // namespace bbb::stats
