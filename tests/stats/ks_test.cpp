#include <gtest/gtest.h>

#include "bbb/rng/distributions.hpp"
#include "bbb/rng/xoshiro256.hpp"
#include "bbb/stats/hypothesis.hpp"

namespace bbb::stats {
namespace {

std::vector<double> normal_sample(double mean, double sd, int n, std::uint64_t seed) {
  rng::Engine gen(seed);
  rng::NormalDist dist(mean, sd);
  std::vector<double> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(dist(gen));
  return out;
}

TEST(KsTwoSample, Validation) {
  EXPECT_THROW((void)ks_two_sample({}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)ks_two_sample({1.0}, {}), std::invalid_argument);
}

TEST(KsTwoSample, SameDistributionPasses) {
  const auto a = normal_sample(0, 1, 2000, 1);
  const auto b = normal_sample(0, 1, 2000, 2);
  const auto res = ks_two_sample(a, b);
  EXPECT_GT(res.p_value, 1e-3);
  EXPECT_LT(res.statistic, 0.08);
}

TEST(KsTwoSample, ShiftedDistributionFails) {
  const auto a = normal_sample(0, 1, 2000, 3);
  const auto b = normal_sample(0.5, 1, 2000, 4);
  const auto res = ks_two_sample(a, b);
  EXPECT_LT(res.p_value, 1e-6);
  EXPECT_GT(res.statistic, 0.15);
}

TEST(KsTwoSample, DifferentSpreadFails) {
  const auto a = normal_sample(0, 1, 3000, 5);
  const auto b = normal_sample(0, 2, 3000, 6);
  const auto res = ks_two_sample(a, b);
  EXPECT_LT(res.p_value, 1e-6);
}

TEST(KsTwoSample, IdenticalSamplesGiveZeroStatistic) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const auto res = ks_two_sample(a, a);
  EXPECT_DOUBLE_EQ(res.statistic, 0.0);
  EXPECT_NEAR(res.p_value, 1.0, 1e-9);
}

TEST(KsTwoSample, HandlesHeavyTies) {
  // Discrete data with many ties (bin loads!) must not break the statistic.
  rng::Engine gen(7);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(static_cast<double>(rng::uniform_below(gen, 5)));
    b.push_back(static_cast<double>(rng::uniform_below(gen, 5)));
  }
  const auto same = ks_two_sample(a, b);
  EXPECT_GT(same.p_value, 1e-3);
  // Now shift b by one: every value differs, KS must reject.
  for (auto& x : b) x += 1.0;
  const auto shifted = ks_two_sample(a, b);
  EXPECT_LT(shifted.p_value, 1e-6);
}

}  // namespace
}  // namespace bbb::stats
