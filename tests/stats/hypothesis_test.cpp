#include "bbb/stats/hypothesis.hpp"

#include <gtest/gtest.h>

#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::stats {
namespace {

TEST(ChiSquareGof, FairDiePasses) {
  rng::Engine gen(1);
  std::vector<std::uint64_t> counts(6, 0);
  for (int i = 0; i < 60'000; ++i) ++counts[rng::uniform_below(gen, 6)];
  const auto res = chi_square_gof(counts, std::vector<double>(6, 1.0 / 6.0));
  EXPECT_GT(res.p_value, 1e-3);
  EXPECT_DOUBLE_EQ(res.df, 5.0);
}

TEST(ChiSquareGof, LoadedDieFails) {
  // Heavily loaded toward face 0.
  std::vector<std::uint64_t> counts{30'000, 6'000, 6'000, 6'000, 6'000, 6'000};
  const auto res = chi_square_gof(counts, std::vector<double>(6, 1.0 / 6.0));
  EXPECT_LT(res.p_value, 1e-10);
}

TEST(ChiSquareGof, PoolsSparseCells) {
  // Expected counts of 0.5 in the tail cells must be pooled.
  std::vector<std::uint64_t> counts{50, 30, 15, 3, 1, 1};
  std::vector<double> probs{0.5, 0.3, 0.15, 0.03, 0.01, 0.01};
  const auto res = chi_square_gof(counts, probs);
  EXPECT_GT(res.pooled_cells, 0u);
  EXPECT_GT(res.p_value, 0.01);
}

TEST(ChiSquareGof, ResidualProbabilityBecomesExtraCell) {
  // Probabilities sum to 0.9; the 0.1 residual is an expected-but-unseen
  // cell which should penalize the fit.
  std::vector<std::uint64_t> counts{500, 500};
  std::vector<double> probs{0.45, 0.45};
  const auto res = chi_square_gof(counts, probs);
  EXPECT_LT(res.p_value, 1e-10);
}

TEST(ChiSquareGof, Validation) {
  EXPECT_THROW((void)chi_square_gof({}, {}), std::invalid_argument);
  EXPECT_THROW((void)chi_square_gof({1, 2}, {0.5}), std::invalid_argument);
  EXPECT_THROW((void)chi_square_gof({1, 2}, {0.5, -0.5}), std::invalid_argument);
  EXPECT_THROW((void)chi_square_gof({0, 0}, {0.5, 0.5}), std::invalid_argument);
}

TEST(ChiSquareFitDiscrete, UniformSamplerMatchesUniformPmf) {
  rng::Engine gen(2);
  const auto res = chi_square_fit_discrete(
      [&] { return rng::uniform_below(gen, 8); },
      [](std::uint64_t k) { return k < 8 ? 0.125 : 0.0; }, 80'000, 8);
  EXPECT_GT(res.p_value, 1e-3);
}

TEST(ChiSquareFitDiscrete, DetectsWrongModel) {
  rng::Engine gen(3);
  // Sampler is uniform on 8 cells but the model says uniform on 4.
  const auto res = chi_square_fit_discrete(
      [&] { return rng::uniform_below(gen, 8); },
      [](std::uint64_t k) { return k < 4 ? 0.25 : 0.0; }, 20'000, 8);
  EXPECT_LT(res.p_value, 1e-10);
}

TEST(ChiSquareFitDiscrete, Validation) {
  EXPECT_THROW((void)chi_square_fit_discrete([] { return std::uint64_t{0}; },
                                       [](std::uint64_t) { return 1.0; }, 0, 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace bbb::stats
