#include "bbb/io/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace bbb::io {
namespace {

Table sample_table() {
  Table t({"name", "value"});
  t.begin_row();
  t.add_cell("alpha");
  t.add_num(1.5, 2);
  t.begin_row();
  t.add_cell("beta");
  t.add_int(42);
  return t;
}

TEST(Table, ParseFormat) {
  EXPECT_EQ(parse_format("ascii"), Format::kAscii);
  EXPECT_EQ(parse_format("markdown"), Format::kMarkdown);
  EXPECT_EQ(parse_format("csv"), Format::kCsv);
  EXPECT_THROW((void)parse_format("yaml"), std::invalid_argument);
}

TEST(Table, RejectsEmptyColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CsvRendering) {
  const std::string csv = sample_table().render(Format::kCsv);
  EXPECT_EQ(csv, "name,value\nalpha,1.50\nbeta,42\n");
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"a"});
  t.begin_row();
  t.add_cell("x,y");
  t.begin_row();
  t.add_cell("he said \"hi\"");
  const std::string csv = t.render(Format::kCsv);
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, MarkdownRendering) {
  const std::string md = sample_table().render(Format::kMarkdown);
  EXPECT_NE(md.find("| name"), std::string::npos);
  EXPECT_NE(md.find("| ----"), std::string::npos);
  EXPECT_NE(md.find("| alpha"), std::string::npos);
}

TEST(Table, AsciiRenderingAligned) {
  const std::string ascii = sample_table().render(Format::kAscii);
  EXPECT_NE(ascii.find("| name "), std::string::npos);
  EXPECT_NE(ascii.find("| alpha"), std::string::npos);
  // Rule lines top and bottom.
  EXPECT_GE(std::count(ascii.begin(), ascii.end(), '\n'), 5);
}

TEST(Table, TitleAppearsInAsciiAndMarkdownOnly) {
  Table t({"c"});
  t.set_title("My Title");
  t.begin_row();
  t.add_cell("v");
  EXPECT_NE(t.render(Format::kAscii).find("# My Title"), std::string::npos);
  EXPECT_NE(t.render(Format::kMarkdown).find("# My Title"), std::string::npos);
  EXPECT_EQ(t.render(Format::kCsv).find("My Title"), std::string::npos);
}

TEST(Table, IncompleteRowFailsRender) {
  Table t({"a", "b"});
  t.begin_row();
  t.add_cell("only-one");
  EXPECT_THROW((void)t.render(Format::kAscii), std::logic_error);
}

TEST(Table, OverfullRowThrows) {
  Table t({"a"});
  t.begin_row();
  t.add_cell("x");
  EXPECT_THROW((void)t.add_cell("y"), std::logic_error);
}

TEST(Table, CellWithoutRowThrows) {
  Table t({"a"});
  EXPECT_THROW((void)t.add_cell("x"), std::logic_error);
}

TEST(Table, AtAccessor) {
  const Table t = sample_table();
  EXPECT_EQ(t.at(0, 0), "alpha");
  EXPECT_EQ(t.at(1, 1), "42");
  EXPECT_THROW((void)t.at(2, 0), std::out_of_range);
}

TEST(Table, PrintWritesToStream) {
  std::ostringstream os;
  sample_table().print(os, Format::kCsv);
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace bbb::io
