#include "bbb/io/argparse.hpp"

#include <gtest/gtest.h>

namespace bbb::io {
namespace {

ArgParser sample_parser() {
  ArgParser p("prog", "test parser");
  p.add_flag("n", std::uint64_t{100}, "bins");
  p.add_flag("rate", 0.5, "a rate");
  p.add_flag("format", std::string("ascii"), "output format");
  return p;
}

TEST(ArgParser, DefaultsWhenNoArgs) {
  ArgParser p = sample_parser();
  const char* argv[] = {"prog"};
  EXPECT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_u64("n"), 100u);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.5);
  EXPECT_EQ(p.get_string("format"), "ascii");
}

TEST(ArgParser, EqualsForm) {
  ArgParser p = sample_parser();
  const char* argv[] = {"prog", "--n=42", "--rate=1.25", "--format=csv"};
  EXPECT_TRUE(p.parse(4, argv));
  EXPECT_EQ(p.get_u64("n"), 42u);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 1.25);
  EXPECT_EQ(p.get_string("format"), "csv");
}

TEST(ArgParser, SpaceForm) {
  ArgParser p = sample_parser();
  const char* argv[] = {"prog", "--n", "7"};
  EXPECT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_u64("n"), 7u);
}

TEST(ArgParser, HelpReturnsFalse) {
  ArgParser p = sample_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, HelpTextListsFlags) {
  const std::string help = sample_parser().help();
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_NE(help.find("--rate"), std::string::npos);
  EXPECT_NE(help.find("default: 100"), std::string::npos);
}

TEST(ArgParser, UnknownFlagThrows) {
  ArgParser p = sample_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW((void)p.parse(2, argv), std::invalid_argument);
}

TEST(ArgParser, MalformedValuesThrow) {
  {
    ArgParser p = sample_parser();
    const char* argv[] = {"prog", "--n=abc"};
    EXPECT_THROW((void)p.parse(2, argv), std::invalid_argument);
  }
  {
    ArgParser p = sample_parser();
    const char* argv[] = {"prog", "--n=12junk"};
    EXPECT_THROW((void)p.parse(2, argv), std::invalid_argument);
  }
  {
    ArgParser p = sample_parser();
    const char* argv[] = {"prog", "--rate=..5"};
    EXPECT_THROW((void)p.parse(2, argv), std::invalid_argument);
  }
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser p = sample_parser();
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW((void)p.parse(2, argv), std::invalid_argument);
}

TEST(ArgParser, NonFlagArgumentThrows) {
  ArgParser p = sample_parser();
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW((void)p.parse(2, argv), std::invalid_argument);
}

TEST(ArgParser, TypeMismatchThrows) {
  ArgParser p = sample_parser();
  const char* argv[] = {"prog"};
  EXPECT_TRUE(p.parse(1, argv));
  EXPECT_THROW((void)p.get_u64("format"), std::invalid_argument);
  EXPECT_THROW((void)p.get_string("n"), std::invalid_argument);
  // get_double on an integer flag is allowed (widening).
  EXPECT_DOUBLE_EQ(p.get_double("n"), 100.0);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  ArgParser p("prog", "dup");
  p.add_flag("x", std::uint64_t{1}, "first");
  EXPECT_THROW(p.add_flag("x", 2.0, "second"), std::invalid_argument);
}

}  // namespace
}  // namespace bbb::io
