#include "bbb/io/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace bbb::io {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "bbb_csv_test.csv";
};

TEST_F(CsvWriterTest, HeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.write_row(std::vector<std::string>{"1", "x"});
    w.write_row(std::vector<double>{2.5, 3.0});
    EXPECT_EQ(w.rows(), 2u);
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,x\n2.5,3\n");
}

TEST_F(CsvWriterTest, QuotesSpecialCharacters) {
  {
    CsvWriter w(path_, {"c"});
    w.write_row(std::vector<std::string>{"with,comma"});
  }
  EXPECT_EQ(slurp(path_), "c\n\"with,comma\"\n");
}

TEST_F(CsvWriterTest, WidthMismatchThrows) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW((void)w.write_row(std::vector<std::string>{"only"}),
               std::invalid_argument);
}

TEST_F(CsvWriterTest, EmptyHeaderThrows) {
  EXPECT_THROW(CsvWriter(path_, {}), std::invalid_argument);
}

TEST(CsvWriter, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}), std::runtime_error);
}

}  // namespace
}  // namespace bbb::io
