# Provide GTest::gtest_main, preferring an installed GoogleTest and falling
# back to FetchContent when none is found (requires network on first
# configure). Either path yields the same imported targets, so test
# CMakeLists stay agnostic of the source.

# Probe the distro's install location first: on mixed machines a conda or
# homebrew GTest earlier in the prefix path can shadow it with an older,
# differently-compiled build.
find_package(GTest CONFIG QUIET
  PATHS /usr/lib/x86_64-linux-gnu/cmake/GTest /usr/lib/cmake/GTest /usr/lib64/cmake/GTest
  NO_DEFAULT_PATH)
if(NOT TARGET GTest::gtest_main)
  find_package(GTest CONFIG QUIET)
endif()

if(NOT TARGET GTest::gtest_main)
  message(STATUS "System GoogleTest not found; fetching v1.14.0 via FetchContent")
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  # Keep gmock out of the build; the suites use plain gtest.
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
    add_library(GTest::gtest ALIAS gtest)
  endif()
else()
  message(STATUS "Using system GoogleTest: ${GTest_DIR}")
endif()

include(GoogleTest)
