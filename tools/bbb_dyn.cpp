/// bbb_dyn — the dynamic-workload driver: run any rule from the protocol
/// registry (the full batch vocabulary — greedy, left, memory, threshold,
/// adaptive variants, batched, self-balancing, cuckoo, ...) against any
/// workload generator, print steady-state metrics, the occupancy tail,
/// and optionally a snapshot trajectory CSV.
///
///   $ bbb_dyn --allocator=greedy[2] --workload=supermarket[90] --n=4096
///   $ bbb_dyn --allocator=memory[1,1] --workload='churn[32768]' --n=4096
///   $ bbb_dyn --allocator=threshold[2] --mhint=8192 --workload='bursty[95,10,5]'
///   $ bbb_dyn --list=1                      # print every spec string
///   $ bbb_dyn --csv=snapshots.csv ...       # replicate-0 trajectory dump

#include <cstdio>
#include <string>

#include "bbb/dyn/engine.hpp"
#include "bbb/io/argparse.hpp"
#include "bbb/io/csv.hpp"
#include "bbb/io/table.hpp"
#include "bbb/obs/cli.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bbb_dyn",
                          "run one dynamic (arrivals + departures) experiment");
  args.add_flag("allocator", std::string("adaptive-net"),
                "protocol registry spec (see --list=1)");
  args.add_flag("workload", std::string("supermarket[90]"),
                "workload spec (see --list=1)");
  args.add_flag("n", std::uint64_t{1024}, "bins");
  args.add_flag("mhint", std::uint64_t{0},
                "total-count hint for fixed-bound rules like threshold (0 = n)");
  args.add_flag("warmup", std::uint64_t{32768}, "burn-in events before measuring");
  args.add_flag("events", std::uint64_t{65536}, "measured events");
  args.add_flag("stride", std::uint64_t{1024}, "measured events between snapshots");
  args.add_flag("tail", std::uint64_t{12}, "track frac(load >= k) for k <= tail");
  args.add_flag("reps", std::uint64_t{8}, "replicates");
  args.add_flag("seed", std::uint64_t{42}, "master seed");
  args.add_flag("threads", std::uint64_t{0}, "worker threads (0 = hardware)");
  args.add_flag("layout", std::string("wide"),
                "BinState storage: wide|compact (compact rejects workloads "
                "that serve uniformly random busy bins)");
  args.add_flag("format", std::string("ascii"), "ascii|markdown|csv");
  args.add_flag("list", std::uint64_t{0},
                "1 = print allocator and workload spec strings and exit");
  args.add_flag("csv", std::string(""), "dump replicate-0 snapshots to this file");
  args.add_flag("strict", std::uint64_t{0},
                "1 = exit nonzero (status 2) when any departure event arrived "
                "with an empty system (dropped_departures > 0)");
  bbb::obs::add_obs_flags(args);
  try {
    if (!args.parse(argc, argv)) return 0;

    if (args.get_u64("list") != 0) {
      std::puts("rules (every protocol registry spec):");
      for (const auto& s : bbb::dyn::streaming_allocator_specs()) {
        std::printf("  %s\n", s.c_str());
      }
      std::puts("workloads:");
      for (const auto& s : bbb::dyn::workload_specs()) std::printf("  %s\n", s.c_str());
      return 0;
    }

    bbb::dyn::DynConfig cfg;
    cfg.allocator_spec = args.get_string("allocator");
    cfg.workload_spec = args.get_string("workload");
    cfg.n = static_cast<std::uint32_t>(args.get_u64("n"));
    cfg.m_hint = args.get_u64("mhint");
    cfg.warmup = args.get_u64("warmup");
    cfg.events = args.get_u64("events");
    cfg.stride = args.get_u64("stride");
    cfg.tail_max = static_cast<std::uint32_t>(args.get_u64("tail"));
    cfg.replicates = static_cast<std::uint32_t>(args.get_u64("reps"));
    cfg.seed = args.get_u64("seed");
    cfg.layout = bbb::core::parse_state_layout(args.get_string("layout"));
    cfg.obs = bbb::obs::parse_obs_flags(args);
    const auto format = bbb::io::parse_format(args.get_string("format"));

    bbb::par::ThreadPool pool(static_cast<std::size_t>(args.get_u64("threads")));
    const bbb::dyn::DynSummary s = bbb::dyn::run_dynamic(cfg, pool);

    bbb::io::Table table({"metric", "mean", "stddev", "min", "max", "ci95"});
    table.set_title(cfg.describe());
    const auto add = [&table](const std::string& name,
                              const bbb::stats::RunningStats& st, int prec) {
      table.begin_row();
      table.add_cell(name);
      table.add_num(st.mean(), prec);
      table.add_num(st.stddev(), prec);
      table.add_num(st.min(), prec);
      table.add_num(st.max(), prec);
      table.add_num(st.ci95_halfwidth(), prec);
    };
    add("balls in system", s.balls, 1);
    add("psi", s.psi, 1);
    add("gap", s.gap, 2);
    add("max load", s.max_load, 2);
    add("peak max load", s.peak_max, 2);
    add("probes/ball", s.probes_per_ball, 4);
    std::fputs(table.render(format).c_str(), stdout);
    std::printf("steady-state psi/n = %.3f\n\n", s.psi_per_bin());
    if (s.dropped_departures > 0) {
      std::printf("WARNING: %llu departure events arrived with an empty system "
                  "(broken generator?)\n\n",
                  static_cast<unsigned long long>(s.dropped_departures));
    }

    bbb::io::Table tail({"k", "frac(load >= k)", "ci95"});
    tail.set_title("occupancy tail (averaged over the measured window)");
    for (std::size_t k = 0; k < s.tail.size(); ++k) {
      tail.begin_row();
      tail.add_int(static_cast<std::int64_t>(k));
      tail.add_num(s.tail[k].mean(), 6);
      tail.add_num(s.tail[k].ci95_halfwidth(), 6);
    }
    std::fputs(tail.render(format).c_str(), stdout);

    const std::string csv_path = args.get_string("csv");
    if (!csv_path.empty() && !s.replicates.empty()) {
      bbb::io::CsvWriter csv(csv_path, {"time", "events", "balls", "probes",
                                        "max_load", "min_load", "psi", "log_phi"});
      for (const auto& snap : s.replicates.front().snapshots) {
        csv.write_row(std::vector<double>{
            snap.time, static_cast<double>(snap.events),
            static_cast<double>(snap.balls), static_cast<double>(snap.probes),
            static_cast<double>(snap.max_load), static_cast<double>(snap.min_load),
            snap.psi, snap.log_phi});
      }
      std::printf("wrote %zu snapshot rows (replicate 0) to %s\n", csv.rows(),
                  csv_path.c_str());
    }

    // Metric summary on stderr so piped stdout (csv/markdown) stays clean.
    bbb::obs::print_summary(s.obs, stderr);
    if (args.get_u64("strict") != 0 && s.dropped_departures > 0) {
      std::fprintf(stderr,
                   "bbb_dyn: --strict: %llu dropped departure(s) — failing\n",
                   static_cast<unsigned long long>(s.dropped_departures));
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbb_dyn: %s\n", e.what());
    return 1;
  }
  return 0;
}
