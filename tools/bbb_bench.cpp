/// bbb_bench — the canonical perf-trajectory harness: run a pinned suite
/// of micro and end-to-end cases and emit one schema-versioned JSON record
/// (see docs/EXPERIMENTS.md, "Perf trajectory"), so every PR leaves a
/// comparable perf artifact (BENCH_PR5.json, BENCH_PR6.json, ...) instead
/// of anecdotal before/after numbers in commit messages.
///
///   $ bbb_bench --out=BENCH_PR5.json --label=PR5 --commit=$(git rev-parse HEAD)
///   $ bbb_bench --smoke=1 --out=bench_smoke.json     # CI: seconds, not minutes
///
/// The suite (ids are stable across PRs; sizes shrink under --smoke=1):
///   * state.*  — BinState mutator and metric-read costs, wide and compact
///     layouts (ns/op; the metric read is max+min+psi+lnPhi off the
///     incremental state);
///   * stream.* — streaming-allocator throughput per rule family at
///     giant n with the probe lookahead on (balls/s, plus the run's
///     max load and gap as a correctness echo);
///   * shard.*  — sharded-engine threads sweep, greedy[2] at t = 1/2/4/8
///     worker shards (balls/s; the record's machine.hardware_threads says
///     whether the sweep ran parallel or oversubscribed);
///   * dyn.*    — dynamic-engine churn steady state (events/s, psi/n).
///
/// Comparing trajectories: every record carries schema/label/commit/
/// machine; `python3 tools/compare_bench.py OLD.json NEW.json` prints the
/// per-case ratios. tools/validate_bench.py checks a record against the
/// schema (tools/bench_schema.json); CI runs it on every push.

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bbb/core/bin_state.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/core/rule.hpp"
#include "bbb/core/simd/batch_ops.hpp"
#include "bbb/dyn/engine.hpp"
#include "bbb/io/argparse.hpp"
#include "bbb/law/engine.hpp"
#include "bbb/obs/cli.hpp"
#include "bbb/obs/harvest.hpp"
#include "bbb/obs/trace_sink.hpp"
#include "bbb/rng/engine.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/rng/xoshiro256.hpp"
#include "bbb/shard/engine.hpp"

namespace {

struct Case {
  std::string id;    // stable case name, e.g. "stream.greedy[2].wide"
  std::string kind;  // state_op | stream | dyn
  std::string layout;
  std::uint64_t n = 0;
  std::uint64_t work = 0;        // ops / balls / events measured
  double seconds = 0.0;          // wall time of the measured region
  double per_second = 0.0;       // work / seconds
  double ns_per_op = 0.0;        // 1e9 * seconds / work
  double check = 0.0;            // correctness echo (max load, psi/n, ...)
  std::string check_name;
  std::uint32_t shards = 0;      // shard cases only: worker-thread count
  // Stream cases harvest the core's passive counters after the timed
  // region (nine integer reads — never inside the measurement) and carry
  // them into the record's per-case "obs" block.
  bbb::obs::CoreCounters counters;
  bool has_counters = false;
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Case finish(Case c, double t0, double t1, std::uint64_t work) {
  c.work = work;
  c.seconds = t1 - t0;
  c.per_second = c.seconds > 0 ? static_cast<double>(work) / c.seconds : 0.0;
  c.ns_per_op = work > 0 ? 1e9 * c.seconds / static_cast<double>(work) : 0.0;
  return c;
}

/// BinState mutator cost: m adds into pre-drawn bins, then m/2 removes.
/// Every 64th op targets bin 0, so that bin climbs through the compact
/// layout's 8-bit lane limit (255) early and its remaining ~m/128 ops run
/// on the overflow side-table — the one mutator path unique to compact —
/// and a final drain of that bin crosses the demotion boundary back to
/// the lane. A side-table regression therefore shows in this case's
/// trajectory, not just in the lane fast path.
Case bench_state_ops(bbb::core::StateLayout layout, std::uint32_t n,
                     std::uint64_t m, std::uint64_t seed) {
  Case c;
  c.id = "state.add_remove." + std::string(bbb::core::to_string(layout));
  c.kind = "state_op";
  c.layout = bbb::core::to_string(layout);
  c.n = n;
  bbb::rng::Engine gen(seed);
  std::vector<std::uint32_t> bins(static_cast<std::size_t>(m));
  for (std::size_t i = 0; i < bins.size(); ++i) {
    bins[i] = i % 64 == 0
                  ? 0
                  : static_cast<std::uint32_t>(bbb::rng::uniform_below(gen, n));
  }
  bbb::core::BinState state(n, layout);
  const double t0 = now_seconds();
  for (const std::uint32_t b : bins) state.add_ball(b);
  for (std::uint64_t i = 0; i < m / 2; ++i) state.remove_ball(bins[i]);
  // Drain the hot bin to zero: the demotion crossing (overflow -> lane)
  // plus a run of pure side-table removes.
  std::uint64_t drained = 0;
  while (state.load(0) > 0) {
    state.remove_ball(0);
    ++drained;
  }
  const double t1 = now_seconds();
  c = finish(std::move(c), t0, t1, m + m / 2 + drained);
  c.check = static_cast<double>(state.balls());
  c.check_name = "balls";
  return c;
}

/// Incremental metric read: max+min+psi+lnPhi per read, off a loaded state.
Case bench_metric_read(bbb::core::StateLayout layout, std::uint32_t n,
                       std::uint64_t reads, std::uint64_t seed) {
  Case c;
  c.id = "state.metric_read." + std::string(bbb::core::to_string(layout));
  c.kind = "state_op";
  c.layout = bbb::core::to_string(layout);
  c.n = n;
  bbb::rng::Engine gen(seed);
  bbb::core::BinState state(n, layout);
  for (std::uint64_t i = 0; i < 2ULL * n; ++i) {
    state.add_ball(static_cast<std::uint32_t>(bbb::rng::uniform_below(gen, n)));
  }
  double sink = 0.0;
  const double t0 = now_seconds();
  for (std::uint64_t i = 0; i < reads; ++i) {
    sink += static_cast<double>(state.max_load()) - state.min_load() +
            state.psi() + state.log_phi();
  }
  const double t1 = now_seconds();
  c = finish(std::move(c), t0, t1, reads);
  c.check = sink / static_cast<double>(reads);
  c.check_name = "metric_sum";
  return c;
}

/// Streaming throughput of one rule family at giant n, lookahead on. The
/// timed region is one place_batch call: kernel-capable rules (one-choice,
/// greedy[2], left[2] on the compact layout) run the vectorized wave path,
/// every other family falls through to the per-ball loop — so the same
/// case id tracks whichever path that family actually ships with, and the
/// check echo (max_load) certifies the placements stayed bit-identical.
Case bench_stream(const std::string& spec, bbb::core::StateLayout layout,
                  std::uint32_t n, std::uint64_t m, std::uint64_t seed) {
  Case c;
  c.id = "stream." + spec + "." + std::string(bbb::core::to_string(layout));
  c.kind = "stream";
  c.layout = bbb::core::to_string(layout);
  c.n = n;
  bbb::rng::Engine gen(seed);
  bbb::core::StreamingAllocator alloc(bbb::core::BinState(n, layout),
                                      bbb::core::make_rule(spec, n, m));
  alloc.set_engine_exclusive(true);
  const double t0 = now_seconds();
  alloc.place_batch(m, gen);
  const double t1 = now_seconds();
  c = finish(std::move(c), t0, t1, m);
  c.check = static_cast<double>(alloc.state().max_load());
  c.check_name = "max_load";
  c.counters = bbb::obs::harvest(alloc);
  c.has_counters = true;
  return c;
}

/// Law-tier occupancy-profile generation rate: replicated one-choice
/// profile draws at m = n, reported in balls/s — directly comparable to
/// the stream.* cases, which pay per ball the hard way. The check echoes
/// the mean max load so a correctness drift (not just a perf drift) in
/// the sampler shows in the trajectory.
Case bench_law_profile(std::uint64_t n, std::uint32_t reps, std::uint64_t seed) {
  Case c;
  c.id = "law.one-choice.profile";
  c.kind = "law";
  c.layout = "none";
  c.n = n;
  bbb::law::LawConfig cfg;
  cfg.protocol_spec = "one-choice";
  cfg.m = n;
  cfg.n = n;
  cfg.replicates = reps;
  cfg.seed = seed;
  cfg.keep_records = false;
  const double t0 = now_seconds();
  const bbb::law::LawSummary s = bbb::law::run_law_experiment(cfg);
  const double t1 = now_seconds();
  c = finish(std::move(c), t0, t1, cfg.m * reps);
  c.check = s.max_load.mean();
  c.check_name = "max_load";
  return c;
}

/// Sharded-engine threads sweep: the same greedy[2] workload at t = 1, 2,
/// 4, 8 shards (balls/s). t = 1 is the streaming fast path (comparable to
/// stream.greedy[2].wide); t > 1 pays the round-synchronized conflict
/// protocol. On a machine with fewer hardware threads than shards the
/// sweep records honest oversubscribed numbers — machine.hardware_threads
/// in the record says which regime a trajectory point came from.
Case bench_shard_sweep(std::uint32_t shards, std::uint32_t n, std::uint64_t m,
                       std::uint64_t seed) {
  Case c;
  c.id = "shard.greedy[2].t" + std::to_string(shards);
  c.kind = "shard";
  c.layout = "wide";
  c.n = n;
  c.shards = shards;
  bbb::shard::ShardOptions opt;
  opt.shards = shards;
  opt.m_hint = m;
  bbb::shard::ShardedAllocator engine("greedy[2]", n, opt);
  bbb::rng::Engine gen = bbb::rng::SeedSequence(seed).engine(0);
  const double t0 = now_seconds();
  engine.run(m, gen);
  const double t1 = now_seconds();
  c = finish(std::move(c), t0, t1, m);
  c.check = static_cast<double>(engine.max_load());
  c.check_name = "max_load";
  return c;
}

/// Dynamic churn steady state: one replicate, measured events per second.
Case bench_dyn_churn(const std::string& alloc_spec, std::uint32_t n,
                     std::uint64_t events, std::uint64_t seed) {
  Case c;
  c.id = "dyn.churn." + alloc_spec;
  c.kind = "dyn";
  c.layout = "wide";
  c.n = n;
  bbb::dyn::DynConfig cfg;
  cfg.allocator_spec = alloc_spec;
  cfg.workload_spec = "churn[" + std::to_string(4 * n) + "]";
  cfg.n = n;
  cfg.warmup = events / 4;
  cfg.events = events;
  cfg.stride = 0;  // no snapshots: measure the engine, not the recorder
  cfg.replicates = 1;
  cfg.seed = seed;
  const double t0 = now_seconds();
  const bbb::dyn::DynReplicate rep = bbb::dyn::run_dynamic_replicate(cfg, 0);
  const double t1 = now_seconds();
  c = finish(std::move(c), t0, t1, cfg.warmup + cfg.events);
  c.check = rep.mean_psi / static_cast<double>(n);
  c.check_name = "psi_per_bin";
  return c;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      // Control characters (a newline smuggled into --label, say) must be
      // \u-escaped or the record is not JSON at all.
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(ch));
      out += buf;
    } else {
      out.push_back(ch);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bbb_bench",
                          "run the pinned perf suite and write one JSON record");
  args.add_flag("out", std::string("bench.json"), "output JSON path");
  args.add_flag("label", std::string(""), "trajectory label, e.g. PR5");
  args.add_flag("commit", std::string(""), "git commit hash to embed");
  args.add_flag("seed", std::uint64_t{42}, "seed for every case");
  args.add_flag("smoke", std::uint64_t{0},
                "1 = CI sizes (seconds); 0 = the pinned giant-scale sizes");
  bbb::obs::add_obs_flags(args);
  try {
    if (!args.parse(argc, argv)) return 0;
    const bool smoke = args.get_u64("smoke") != 0;
    const std::uint64_t seed = args.get_u64("seed");
    const bbb::obs::ObsConfig obs = bbb::obs::parse_obs_flags(args);
    if (obs.sink) {
      bbb::obs::JsonLine line("run_start", "bench");
      line.begin_object("config")
          .field("smoke", smoke)
          .field("seed", seed)
          .field("label", args.get_string("label"))
          .end_object();
      obs.sink->write(std::move(line));
    }

    // The pinned suite shapes. Smoke keeps every case id identical and
    // only shrinks sizes, so a smoke record validates against the same
    // schema (but is not comparable to a full record — `smoke` is part of
    // the config block).
    const std::uint32_t state_n = smoke ? (1u << 16) : (1u << 20);
    const std::uint64_t state_m = 4ULL * state_n;
    const std::uint64_t reads = smoke ? 200'000 : 2'000'000;
    const std::uint32_t stream_n = smoke ? (1u << 16) : (1u << 22);
    const std::uint64_t stream_m = 2ULL * stream_n;
    const std::uint32_t dyn_n = smoke ? (1u << 12) : (1u << 16);
    const std::uint64_t dyn_events = smoke ? (1ULL << 14) : (1ULL << 20);

    std::vector<Case> cases;
    using bbb::core::StateLayout;
    std::fprintf(stderr, "bbb_bench: state ops...\n");
    cases.push_back(bench_state_ops(StateLayout::kWide, state_n, state_m, seed));
    cases.push_back(bench_state_ops(StateLayout::kCompact, state_n, state_m, seed));
    cases.push_back(bench_metric_read(StateLayout::kWide, state_n, reads, seed));
    cases.push_back(bench_metric_read(StateLayout::kCompact, state_n, reads, seed));
    std::fprintf(stderr, "bbb_bench: streaming rule families...\n");
    for (const char* spec : {"one-choice", "greedy[2]", "left[2]", "memory[1,1]",
                             "threshold", "adaptive", "self-balancing"}) {
      cases.push_back(bench_stream(spec, StateLayout::kWide, stream_n, stream_m,
                                   seed));
    }
    cases.push_back(
        bench_stream("greedy[2]", StateLayout::kCompact, stream_n, stream_m, seed));
    std::fprintf(stderr, "bbb_bench: shard threads sweep...\n");
    for (const std::uint32_t t : {1u, 2u, 4u, 8u}) {
      cases.push_back(bench_shard_sweep(t, stream_n, stream_m, seed));
    }
    std::fprintf(stderr, "bbb_bench: dyn churn...\n");
    cases.push_back(bench_dyn_churn("greedy[2]", dyn_n, dyn_events, seed));
    cases.push_back(bench_dyn_churn("adaptive-net", dyn_n, dyn_events, seed));
    std::fprintf(stderr, "bbb_bench: law-tier profile sampling...\n");
    cases.push_back(bench_law_profile(smoke ? (1ULL << 16) : (1ULL << 22),
                                      smoke ? 8 : 32, seed));

    // -- JSON record ---------------------------------------------------------
    std::string out;
    out += "{\n";
    // v2 = v1 plus the per-case "obs" block on stream cases; v3 = v2 plus
    // machine.simd (the dispatch tier the streaming cases ran under) and
    // the optional core.batch.* obs keys; v4 = v3 plus the "shard" case
    // kind and the optional per-case "shards" worker count. Validators and
    // compare_bench.py accept all four, so old BENCH_*.json stay valid.
    out += "  \"schema\": \"bbb-bench-v4\",\n";
    out += "  \"label\": \"";
    json_escape_into(out, args.get_string("label"));
    out += "\",\n  \"commit\": \"";
    json_escape_into(out, args.get_string("commit"));
    out += "\",\n";
    out += "  \"generated_unix\": " + std::to_string(std::time(nullptr)) + ",\n";
    out += "  \"machine\": {\n";
    out += "    \"hardware_threads\": " +
           std::to_string(std::thread::hardware_concurrency()) + ",\n";
#if defined(__VERSION__)
    out += "    \"compiler\": \"";
    json_escape_into(out, __VERSION__);
    out += "\",\n";
#else
    out += "    \"compiler\": \"unknown\",\n";
#endif
    out += "    \"pointer_bits\": " + std::to_string(8 * sizeof(void*)) + ",\n";
    // The tier the batch kernel actually dispatched to on this machine —
    // CPUID detection clamped by BBB_SIMD_MAX and the compiled backends —
    // so two records are known (in)comparable before reading any numbers.
    out += "    \"simd\": \"";
    out += bbb::core::simd::to_string(bbb::core::simd::active_simd_tier());
    out += "\"\n";
    out += "  },\n";
    out += "  \"config\": {\"smoke\": ";
    out += smoke ? "true" : "false";
    out += ", \"seed\": " + std::to_string(seed) + "},\n";
    out += "  \"cases\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const Case& c = cases[i];
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "    {\"id\": \"%s\", \"kind\": \"%s\", \"layout\": \"%s\", "
                    "\"n\": %" PRIu64 ", \"work\": %" PRIu64
                    ", \"seconds\": %.6f, \"per_second\": %.1f, "
                    "\"ns_per_op\": %.3f, \"check\": {\"%s\": %.6g}",
                    c.id.c_str(), c.kind.c_str(), c.layout.c_str(), c.n, c.work,
                    c.seconds, c.per_second, c.ns_per_op, c.check_name.c_str(),
                    c.check);
      out += buf;
      if (c.shards != 0) {
        out += ", \"shards\": " + std::to_string(c.shards);
      }
      if (c.has_counters) {
        // Fixed nine-key shape so the schema can require every field.
        std::snprintf(buf, sizeof(buf),
                      ", \"obs\": {\"probes\": %" PRIu64 ", \"balls_placed\": %" PRIu64
                      ", \"reallocations\": %" PRIu64 ", \"rounds\": %" PRIu64
                      ", \"lookahead_refills\": %" PRIu64
                      ", \"lookahead_discarded_words\": %" PRIu64
                      ", \"compact_promotions\": %" PRIu64
                      ", \"compact_demotions\": %" PRIu64
                      ", \"explode_fallbacks\": %" PRIu64,
                      c.counters.probes, c.counters.balls_placed,
                      c.counters.reallocations, c.counters.rounds,
                      c.counters.lookahead_refills,
                      c.counters.lookahead_discarded_words,
                      c.counters.compact_promotions, c.counters.compact_demotions,
                      c.counters.explode_fallbacks);
        out += buf;
        if (c.counters.batch_batches != 0) {
          // v3-only optional keys: present exactly when the batch kernel
          // engaged, so v2 consumers of kernel-less records see no change.
          std::snprintf(buf, sizeof(buf),
                        ", \"batch_batches\": %" PRIu64
                        ", \"batch_waves\": %" PRIu64
                        ", \"batch_fast_balls\": %" PRIu64
                        ", \"batch_fallback_balls\": %" PRIu64,
                        c.counters.batch_batches, c.counters.batch_waves,
                        c.counters.batch_fast_balls,
                        c.counters.batch_fallback_balls);
          out += buf;
        }
        out += "}";
      }
      out += i + 1 < cases.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";

    const std::string path = args.get_string("out");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bbb_bench: cannot open %s for writing\n", path.c_str());
      return 1;
    }
    std::fputs(out.c_str(), f);
    std::fclose(f);
    std::printf("wrote %zu cases to %s\n", cases.size(), path.c_str());
    for (const Case& c : cases) {
      std::printf("  %-34s %12.0f /s  (%.1f ns/op, %s=%.4g)\n", c.id.c_str(),
                  c.per_second, c.ns_per_op, c.check_name.c_str(), c.check);
    }

    if (obs.counters_on()) {
      // Aggregate the stream cases' harvested counters into one registry
      // (the record already carries them per case).
      bbb::obs::MetricsRegistry registry;
      bbb::obs::CoreCounters total;
      for (const Case& c : cases) {
        if (c.has_counters) total.accumulate(c.counters);
      }
      bbb::obs::fold_into(registry, total);
      const bbb::obs::Snapshot snapshot = registry.snapshot();
      bbb::obs::print_summary(snapshot, stderr);
      if (obs.sink) {
        for (const Case& c : cases) {
          bbb::obs::JsonLine line("case", "bench");
          line.field("id", c.id)
              .field("per_second", c.per_second)
              .field("ns_per_op", c.ns_per_op);
          if (c.has_counters) {
            line.begin_object("metrics")
                .field("probes", c.counters.probes)
                .field("balls_placed", c.counters.balls_placed)
                .field("lookahead_refills", c.counters.lookahead_refills)
                .field("compact_promotions", c.counters.compact_promotions)
                .end_object();
          }
          obs.sink->write(std::move(line));
        }
        bbb::obs::JsonLine line("summary", "bench");
        bbb::obs::append_metrics(line, snapshot);
        obs.sink->write(std::move(line));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbb_bench: %s\n", e.what());
    return 1;
  }
  return 0;
}
