#!/usr/bin/env python3
"""Fail on broken intra-repo links in the repository's markdown docs.

Scans README.md, docs/**.md, and every other tracked *.md (module
READMEs, examples) for markdown links `[text](target)` whose target is a
relative path, and checks the file or directory exists relative to the
linking file. External links (http/https/mailto) and pure anchors (#...)
are ignored; a `path#anchor` target is checked for the path part only.

Usage: python3 tools/check_doc_links.py [repo_root]
Exit 0 = all links resolve; 1 = broken links (each printed); 2 = usage.
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", "build", "build-debug", "build-asan", "_deps"}
# Retrieval artifacts quoting other repositories' markdown verbatim —
# their relative links point into trees that are not checked out here.
SKIP_FILES = {"SNIPPETS.md", "PAPERS.md", "PAPER.md"}


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md") and name not in SKIP_FILES:
                yield os.path.join(dirpath, name)


def main(argv):
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = os.path.abspath(argv[1] if len(argv) == 2 else ".")
    broken = []
    checked = 0
    for md in md_files(root):
        with open(md, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            checked += 1
            resolved = os.path.normpath(os.path.join(os.path.dirname(md), path))
            if not os.path.exists(resolved):
                broken.append((os.path.relpath(md, root), target))
    for md, target in broken:
        print(f"BROKEN {md}: ({target})")
    print(f"checked {checked} intra-repo links, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
