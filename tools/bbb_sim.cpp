/// bbb_sim — the general experiment driver: run any registered protocol at
/// any (m, n), print the summary table, optionally the load histogram and a
/// per-replicate CSV dump.
///
///   $ bbb_sim --protocol=adaptive --m=1000000 --n=10000 --reps=20
///   $ bbb_sim --protocol='greedy[2]' --m=65536 --n=65536 --histogram=1
///   $ bbb_sim --protocol=threshold --csv=reps.csv ...

#include <cstdio>
#include <string>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/core/spec.hpp"
#include "bbb/io/argparse.hpp"
#include "bbb/io/csv.hpp"
#include "bbb/io/table.hpp"
#include "bbb/law/one_choice.hpp"
#include "bbb/obs/cli.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/shard/engine.hpp"
#include "bbb/sim/runner.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bbb_sim", "run one protocol experiment and summarize it");
  args.add_flag("protocol", std::string("adaptive"), "protocol spec (see registry)");
  args.add_flag("m", std::uint64_t{100'000}, "balls");
  args.add_flag("n", std::uint64_t{10'000}, "bins");
  args.add_flag("reps", std::uint64_t{10}, "replicates");
  args.add_flag("seed", std::uint64_t{42}, "master seed");
  args.add_flag("threads", std::uint64_t{0}, "worker threads (0 = hardware)");
  args.add_flag("shards", std::uint64_t{0},
                "run the sharded multi-core engine with this many worker "
                "shards (prepends shards[t]: to the protocol spec; 0 = off)");
  args.add_flag("layout", std::string("wide"),
                "BinState storage: wide|compact (compact streams place_one "
                "over 8-bit lanes, ~1 byte/bin — the n=2^30 tier)");
  args.add_flag("tier", std::string("exact"),
                "exact|law (law samples the one-choice occupancy law "
                "directly — O(sqrt(m)) per replicate; see bbb_law for "
                "astronomical n and the fluid d-choice curves)");
  args.add_flag("format", std::string("ascii"), "ascii|markdown|csv");
  args.add_flag("histogram", std::uint64_t{0}, "1 = print a load histogram");
  args.add_flag("csv", std::string(""), "dump per-replicate rows to this file");
  args.add_flag("list", std::uint64_t{0},
                "1 = print every registry spec string and exit");
  bbb::obs::add_obs_flags(args);
  try {
    if (!args.parse(argc, argv)) return 0;

    if (args.get_u64("list") != 0) {
      // One spec per line, straight from the registry, so docs/PROTOCOLS.md
      // can be checked against the code: bbb_sim --list=1
      for (const auto& spec : bbb::core::protocol_specs()) std::puts(spec.c_str());
      return 0;
    }

    bbb::sim::ExperimentConfig cfg;
    cfg.protocol_spec = args.get_string("protocol");
    if (const std::uint64_t shards = args.get_u64("shards"); shards != 0) {
      cfg.protocol_spec =
          "shards[" + std::to_string(shards) + "]:" + cfg.protocol_spec;
    }
    cfg.m = args.get_u64("m");
    cfg.n = static_cast<std::uint32_t>(args.get_u64("n"));
    cfg.replicates = static_cast<std::uint32_t>(args.get_u64("reps"));
    cfg.seed = args.get_u64("seed");
    cfg.layout = bbb::core::parse_state_layout(args.get_string("layout"));
    cfg.tier = bbb::sim::parse_tier(args.get_string("tier"));
    cfg.obs = bbb::obs::parse_obs_flags(args);
    const auto format = bbb::io::parse_format(args.get_string("format"));

    bbb::par::ThreadPool pool(static_cast<std::size_t>(args.get_u64("threads")));
    const bbb::sim::RunSummary s = bbb::sim::run_experiment(cfg, pool);

    bbb::io::Table table({"metric", "mean", "stddev", "min", "max", "ci95"});
    table.set_title(s.protocol_name + "  " + cfg.describe());
    const auto add = [&table](const std::string& name,
                              const bbb::stats::RunningStats& st, int prec) {
      table.begin_row();
      table.add_cell(name);
      table.add_num(st.mean(), prec);
      table.add_num(st.stddev(), prec);
      table.add_num(st.min(), prec);
      table.add_num(st.max(), prec);
      table.add_num(st.ci95_halfwidth(), prec);
    };
    add("probes", s.probes, 1);
    add("probes/ball", [&] {
      bbb::stats::RunningStats per;
      for (const auto& r : s.records) per.add(r.probes / static_cast<double>(cfg.m));
      return per;
    }(), 4);
    add("max load", s.max_load, 2);
    add("min load", s.min_load, 2);
    add("gap", s.gap, 2);
    add("psi", s.psi, 1);
    add("ln(phi)", s.log_phi, 3);
    if (s.reallocations.max() > 0) add("reallocations", s.reallocations, 1);
    if (s.rounds.max() > 0) add("rounds", s.rounds, 1);
    std::fputs(table.render(format).c_str(), stdout);
    if (s.failures > 0) {
      std::printf("WARNING: %u of %u replicates did not complete\n", s.failures,
                  cfg.replicates);
    }
    std::printf("paper bound: max load <= ceil(m/n)+1 = %llu (applies to "
                "threshold/adaptive families)\n",
                static_cast<unsigned long long>(bbb::core::ceil_div(cfg.m, cfg.n) + 1));
    // Metric summary on stderr so piped stdout (csv/markdown) stays clean.
    bbb::obs::print_summary(s.obs, stderr);

    if (args.get_u64("histogram") != 0) {
      // One representative run for the histogram (replicate 0's seed).
      bbb::rng::Engine gen = bbb::rng::SeedSequence(cfg.seed).engine(0);
      if (cfg.tier == bbb::sim::Tier::kLaw) {
        // Law tier: the sampled profile IS the histogram.
        const auto profile = bbb::law::sample_one_choice_profile(cfg.m, cfg.n, gen);
        bbb::stats::IntHistogram hist;
        for (std::size_t i = 0; i < profile.counts().size(); ++i) {
          if (profile.counts()[i] > 0) hist.add(profile.base() + i, profile.counts()[i]);
        }
        std::puts("\nload histogram (replicate 0):");
        std::fputs(hist.render_ascii(48).c_str(), stdout);
      } else if (cfg.layout == bbb::core::StateLayout::kWide) {
        const auto protocol = bbb::core::make_protocol(cfg.protocol_spec);
        const auto res = protocol->run(cfg.m, cfg.n, gen);
        std::puts("\nload histogram (replicate 0):");
        std::fputs(bbb::core::load_histogram(res.loads).render_ascii(48).c_str(),
                   stdout);
      } else if (const auto prefix =
                     bbb::core::split_spec_prefix(cfg.protocol_spec, "protocol");
                 prefix.shards != 0) {
        // Compact + sharded: run the engine and read the merged level
        // counts (still no 32-bit load vector materialized).
        bbb::shard::ShardOptions opt;
        opt.shards = prefix.shards;
        opt.layout = cfg.layout;
        opt.m_hint = cfg.m;
        bbb::shard::ShardedAllocator engine(prefix.rest, cfg.n, opt);
        engine.run(cfg.m, gen);
        const auto levels = engine.merged_level_counts();
        bbb::stats::IntHistogram hist;
        for (std::size_t l = 0; l < levels.size(); ++l) {
          if (levels[l] > 0) hist.add(l, levels[l]);
        }
        std::puts("\nload histogram (replicate 0):");
        std::fputs(hist.render_ascii(48).c_str(), stdout);
      } else {
        // Compact layout: stream the replicate and build the histogram
        // straight off the state's incremental level counts — O(max load),
        // no 32-bit load vector is ever materialized (at n = 2^30 that
        // vector alone would be 4 GiB).
        const auto alloc = bbb::core::make_streaming_allocator(cfg.protocol_spec,
                                                               cfg.n, cfg.m,
                                                               cfg.layout);
        alloc->set_engine_exclusive(true);
        for (std::uint64_t i = 0; i < cfg.m; ++i) (void)alloc->place(gen);
        alloc->finalize(gen);
        const bbb::core::BinState& state = alloc->state();
        bbb::stats::IntHistogram hist;
        const auto& levels = state.level_counts();
        for (std::uint32_t l = 0; l <= state.max_load(); ++l) {
          if (levels[l] > 0) hist.add(l, levels[l]);
        }
        std::puts("\nload histogram (replicate 0):");
        std::fputs(hist.render_ascii(48).c_str(), stdout);
      }
    }

    const std::string csv_path = args.get_string("csv");
    if (!csv_path.empty()) {
      bbb::io::CsvWriter csv(csv_path, {"replicate", "probes", "max_load", "min_load",
                                        "gap", "psi", "log_phi", "completed"});
      for (std::size_t r = 0; r < s.records.size(); ++r) {
        const auto& rec = s.records[r];
        csv.write_row(std::vector<double>{static_cast<double>(r), rec.probes,
                                          rec.max_load, rec.min_load, rec.gap, rec.psi,
                                          rec.log_phi,
                                          rec.completed ? 1.0 : 0.0});
      }
      std::printf("wrote %zu replicate rows to %s\n", csv.rows(), csv_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbb_sim: %s\n", e.what());
    return 1;
  }
  return 0;
}
