/// bbb_compare — run two protocols on identical (m, n) and report which one
/// wins on each metric, with bootstrap confidence intervals on the
/// difference of means so "wins" is statistically grounded.
///
///   $ bbb_compare --a=adaptive --b=threshold --m=1000000 --n=10000 --reps=20

#include <cstdio>
#include <string>
#include <vector>

#include "bbb/io/argparse.hpp"
#include "bbb/io/table.hpp"
#include "bbb/obs/cli.hpp"
#include "bbb/sim/runner.hpp"
#include "bbb/stats/bootstrap.hpp"

namespace {

struct MetricView {
  std::string name;
  std::vector<double> a;
  std::vector<double> b;
  int precision;
};

std::vector<double> column(const std::vector<bbb::sim::ReplicateRecord>& recs,
                           double bbb::sim::ReplicateRecord::* field) {
  std::vector<double> out;
  out.reserve(recs.size());
  for (const auto& r : recs) out.push_back(r.*field);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bbb_compare",
                          "head-to-head comparison of two protocol specs");
  args.add_flag("a", std::string("adaptive"), "first protocol spec");
  args.add_flag("b", std::string("threshold"), "second protocol spec");
  args.add_flag("m", std::uint64_t{100'000}, "balls");
  args.add_flag("n", std::uint64_t{10'000}, "bins");
  args.add_flag("reps", std::uint64_t{20}, "replicates");
  args.add_flag("seed", std::uint64_t{42}, "master seed");
  args.add_flag("threads", std::uint64_t{0}, "worker threads (0 = hardware)");
  args.add_flag("format", std::string("ascii"), "ascii|markdown|csv");
  bbb::obs::add_obs_flags(args);
  try {
    if (!args.parse(argc, argv)) return 0;

    bbb::sim::ExperimentConfig cfg;
    cfg.m = args.get_u64("m");
    cfg.n = static_cast<std::uint32_t>(args.get_u64("n"));
    cfg.replicates = static_cast<std::uint32_t>(args.get_u64("reps"));
    cfg.seed = args.get_u64("seed");
    cfg.obs = bbb::obs::parse_obs_flags(args);
    const auto format = bbb::io::parse_format(args.get_string("format"));

    bbb::par::ThreadPool pool(static_cast<std::size_t>(args.get_u64("threads")));
    cfg.protocol_spec = args.get_string("a");
    const auto sa = bbb::sim::run_experiment(cfg, pool);
    cfg.protocol_spec = args.get_string("b");
    const auto sb = bbb::sim::run_experiment(cfg, pool);

    const std::vector<MetricView> metrics = {
        {"probes", column(sa.records, &bbb::sim::ReplicateRecord::probes),
         column(sb.records, &bbb::sim::ReplicateRecord::probes), 1},
        {"max load", column(sa.records, &bbb::sim::ReplicateRecord::max_load),
         column(sb.records, &bbb::sim::ReplicateRecord::max_load), 2},
        {"gap", column(sa.records, &bbb::sim::ReplicateRecord::gap),
         column(sb.records, &bbb::sim::ReplicateRecord::gap), 2},
        {"psi", column(sa.records, &bbb::sim::ReplicateRecord::psi),
         column(sb.records, &bbb::sim::ReplicateRecord::psi), 1},
    };

    bbb::io::Table table({"metric", sa.protocol_name, sb.protocol_name,
                          "diff (a-b)", "diff ci95", "verdict"});
    table.set_title("m = " + std::to_string(cfg.m) + ", n = " + std::to_string(cfg.n) +
                    ", " + std::to_string(cfg.replicates) + " replicates each");
    for (const auto& mv : metrics) {
      // Bootstrap CI of the difference of means (paired by replicate index —
      // same seeds drive both protocols).
      std::vector<double> diffs;
      diffs.reserve(mv.a.size());
      for (std::size_t i = 0; i < mv.a.size(); ++i) diffs.push_back(mv.a[i] - mv.b[i]);
      const auto iv = bbb::stats::bootstrap_mean_ci(diffs, 2000, 0.95, cfg.seed);
      const char* verdict = iv.hi < 0 ? "a lower" : (iv.lo > 0 ? "b lower" : "tie");

      double mean_a = 0, mean_b = 0;
      for (double x : mv.a) mean_a += x;
      for (double x : mv.b) mean_b += x;
      mean_a /= static_cast<double>(mv.a.size());
      mean_b /= static_cast<double>(mv.b.size());

      table.begin_row();
      table.add_cell(mv.name);
      table.add_num(mean_a, mv.precision);
      table.add_num(mean_b, mv.precision);
      table.add_num(iv.point, mv.precision);
      table.add_cell("[" + std::to_string(iv.lo) + ", " + std::to_string(iv.hi) + "]");
      table.add_cell(verdict);
    }
    std::fputs(table.render(format).c_str(), stdout);
    std::puts("verdict column: 'a lower'/'b lower' only when the 95% bootstrap CI");
    std::puts("of the paired difference excludes zero.");
    // One merged snapshot (counters sum across both runs) on stderr so
    // piped stdout stays clean.
    bbb::obs::Snapshot merged = sa.obs;
    merged.merge(sb.obs);
    bbb::obs::print_summary(merged, stderr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbb_compare: %s\n", e.what());
    return 1;
  }
  return 0;
}
