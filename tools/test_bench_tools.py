#!/usr/bin/env python3
"""Unit tests for the bench-record tools: validate_bench.py (v1 through
v4 records, including the v2 per-case "obs" block, the v3 machine.simd /
batch_* additions, and the v4 shard threads-sweep cases) and
compare_bench.py (diffing across schema versions).

Run directly (python3 tools/test_bench_tools.py) or through ctest.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import compare_bench  # noqa: E402
import validate_bench  # noqa: E402


def load_schema():
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "bench_schema.json")
    with open(path) as f:
        return json.load(f)


def v1_record():
    return {
        "schema": "bbb-bench-v1",
        "label": "PRX",
        "commit": "deadbeef",
        "generated_unix": 1700000000,
        "machine": {"hardware_threads": 8, "compiler": "g++", "pointer_bits": 64},
        "config": {"smoke": True, "seed": 42},
        "cases": [
            {"id": "stream.greedy[2].wide", "kind": "stream", "layout": "wide",
             "n": 65536, "work": 131072, "seconds": 0.01,
             "per_second": 13107200.0, "ns_per_op": 76.3,
             "check": {"max_load": 5}},
        ],
    }


def obs_block():
    return {"probes": 262144, "balls_placed": 131072, "reallocations": 0,
            "rounds": 0, "lookahead_refills": 5199,
            "lookahead_discarded_words": 0, "compact_promotions": 0,
            "compact_demotions": 0, "explode_fallbacks": 0}


def v2_record():
    rec = v1_record()
    rec["schema"] = "bbb-bench-v2"
    rec["cases"][0]["obs"] = obs_block()
    return rec


def v3_record():
    rec = v2_record()
    rec["schema"] = "bbb-bench-v3"
    rec["machine"]["simd"] = "avx2"
    rec["cases"][0]["obs"].update(
        {"batch_batches": 1, "batch_waves": 1024, "batch_fast_balls": 131072,
         "batch_fallback_balls": 0})
    return rec


def v4_record():
    rec = v3_record()
    rec["schema"] = "bbb-bench-v4"
    rec["cases"].append(
        {"id": "shard.greedy[2].t4", "kind": "shard", "layout": "wide",
         "n": 65536, "work": 131072, "seconds": 0.02,
         "per_second": 6553600.0, "ns_per_op": 152.6,
         "check": {"max_load": 5}, "shards": 4})
    return rec


def check_errors(record):
    errors = []
    validate_bench.check(record, load_schema(), "$", errors)
    return errors


class ValidateBench(unittest.TestCase):
    def test_v1_record_still_valid(self):
        self.assertEqual(check_errors(v1_record()), [])

    def test_v2_record_valid(self):
        self.assertEqual(check_errors(v2_record()), [])

    def test_v3_record_valid(self):
        self.assertEqual(check_errors(v3_record()), [])

    def test_v4_record_valid(self):
        self.assertEqual(check_errors(v4_record()), [])

    def test_unknown_schema_version_invalid(self):
        rec = v1_record()
        rec["schema"] = "bbb-bench-v5"
        self.assertTrue(any("bbb-bench-v5" in e for e in check_errors(rec)))

    def test_bad_case_kind_invalid(self):
        rec = v4_record()
        rec["cases"][1]["kind"] = "threads"
        self.assertTrue(any("kind" in e for e in check_errors(rec)))

    def test_zero_shards_invalid(self):
        rec = v4_record()
        rec["cases"][1]["shards"] = 0
        self.assertTrue(any("minimum" in e for e in check_errors(rec)))

    def test_bad_simd_tier_invalid(self):
        rec = v3_record()
        rec["machine"]["simd"] = "neon"
        self.assertTrue(any("simd" in e for e in check_errors(rec)))

    def test_obs_missing_counter_invalid(self):
        rec = v2_record()
        del rec["cases"][0]["obs"]["lookahead_refills"]
        self.assertTrue(any("lookahead_refills" in e for e in check_errors(rec)))

    def test_obs_negative_counter_invalid(self):
        rec = v2_record()
        rec["cases"][0]["obs"]["probes"] = -1
        self.assertTrue(any("minimum" in e for e in check_errors(rec)))

    def test_obs_wrong_type_invalid(self):
        rec = v2_record()
        rec["cases"][0]["obs"]["probes"] = "many"
        self.assertTrue(any("expected integer" in e for e in check_errors(rec)))


class CompareBench(unittest.TestCase):
    def run_compare(self, old, new):
        out = io.StringIO()
        with tempfile.TemporaryDirectory() as d:
            old_path = os.path.join(d, "old.json")
            new_path = os.path.join(d, "new.json")
            with open(old_path, "w") as f:
                json.dump(old, f)
            with open(new_path, "w") as f:
                json.dump(new, f)
            with contextlib.redirect_stdout(out), \
                    contextlib.redirect_stderr(out):
                code = compare_bench.main(["compare_bench", old_path, new_path])
        return code, out.getvalue()

    def test_v1_vs_v2_compares(self):
        code, out = self.run_compare(v1_record(), v2_record())
        self.assertEqual(code, 0)
        self.assertIn("stream.greedy[2].wide", out)
        self.assertIn("1.00x", out)

    def test_v2_vs_v2_compares(self):
        code, _ = self.run_compare(v2_record(), v2_record())
        self.assertEqual(code, 0)

    def test_v2_vs_v3_compares(self):
        code, out = self.run_compare(v2_record(), v3_record())
        self.assertEqual(code, 0)
        self.assertIn("1.00x", out)

    def test_v3_vs_v4_compares(self):
        code, out = self.run_compare(v3_record(), v4_record())
        self.assertEqual(code, 0)
        self.assertIn("1.00x", out)

    def test_unknown_schema_rejected(self):
        bad = v1_record()
        bad["schema"] = "bbb-bench-v5"
        code, _ = self.run_compare(bad, v2_record())
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main()
