#!/usr/bin/env python3
"""Unit tests for tools/validate_obs.py — malformed-record coverage.

Run directly (python3 tools/test_validate_obs.py) or through ctest, which
registers it when a Python3 interpreter is found.
"""

import json
import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from validate_obs import validate_lines  # noqa: E402


def load_schema():
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "obs_schema.json")
    with open(path) as f:
        return json.load(f)


def record(**overrides):
    """A valid replicate record, with per-test mutations applied on top."""
    base = {"schema": "bbb-obs-v1", "event": "replicate", "tool": "sim",
            "replicate": 0, "metrics": {"probes": 7}, "seq": 0}
    base.update(overrides)
    return base


class ValidTraces(unittest.TestCase):
    SCHEMA = load_schema()

    def errors_of(self, records):
        lines = [json.dumps(r) if isinstance(r, dict) else r for r in records]
        errors, _ = validate_lines(lines, self.SCHEMA)
        return errors

    def test_full_trace_valid(self):
        errors = self.errors_of([
            {"schema": "bbb-obs-v1", "event": "run_start", "tool": "sim",
             "config": {"m": 10}, "seq": 0},
            {"schema": "bbb-obs-v1", "event": "heartbeat", "tool": "sim",
             "replicate": 0, "done": 5, "total": 10, "seq": 1},
            record(seq=2),
            {"schema": "bbb-obs-v1", "event": "summary", "tool": "sim",
             "metrics": {"core.probe.count": 20}, "seq": 3},
        ])
        self.assertEqual(errors, [])

    def test_case_event_valid(self):
        errors = self.errors_of([
            {"schema": "bbb-obs-v1", "event": "case", "tool": "bench",
             "id": "stream.greedy[2].wide", "per_second": 1.0, "seq": 0},
        ])
        self.assertEqual(errors, [])


class MalformedRecords(unittest.TestCase):
    SCHEMA = load_schema()

    def assert_invalid(self, records, fragment):
        lines = [json.dumps(r) if isinstance(r, dict) else r for r in records]
        errors, _ = validate_lines(lines, self.SCHEMA)
        self.assertTrue(errors, "expected a violation, trace passed")
        self.assertTrue(any(fragment in e for e in errors),
                        f"no error mentions {fragment!r}: {errors}")

    def test_not_json(self):
        self.assert_invalid(["{not json"], "not JSON")

    def test_blank_line(self):
        self.assert_invalid([json.dumps(record()), "   \n"], "blank line")

    def test_wrong_schema_tag(self):
        self.assert_invalid([record(schema="bbb-obs-v99")], "'bbb-obs-v1'")

    def test_unknown_event(self):
        self.assert_invalid([record(event="shutdown")], "shutdown")

    def test_missing_seq(self):
        rec = record()
        del rec["seq"]
        self.assert_invalid([rec], "seq")

    def test_seq_must_strictly_increase(self):
        self.assert_invalid([record(seq=1), record(seq=1)],
                            "not greater than previous")

    def test_seq_regression(self):
        self.assert_invalid([record(seq=5), record(seq=2)],
                            "not greater than previous")

    def test_empty_tool(self):
        self.assert_invalid([record(tool="")], "length 0")

    def test_run_start_needs_config(self):
        self.assert_invalid(
            [{"schema": "bbb-obs-v1", "event": "run_start", "tool": "sim",
              "seq": 0}], "config")

    def test_replicate_needs_metrics(self):
        rec = record()
        del rec["metrics"]
        self.assert_invalid([rec], "metrics")

    def test_heartbeat_needs_total(self):
        self.assert_invalid(
            [{"schema": "bbb-obs-v1", "event": "heartbeat", "tool": "dyn",
              "replicate": 0, "done": 5, "seq": 0}], "total")

    def test_case_needs_id(self):
        self.assert_invalid(
            [{"schema": "bbb-obs-v1", "event": "case", "tool": "bench",
              "seq": 0}], "id")

    def test_negative_seq(self):
        self.assert_invalid([record(seq=-1)], "minimum")

    def test_empty_trace(self):
        errors, counts = validate_lines([], load_schema())
        self.assertTrue(errors)
        self.assertEqual(sum(counts.values()), 0)


if __name__ == "__main__":
    unittest.main()
