#!/usr/bin/env python3
"""Compare two bbb_bench records case by case.

Usage: python3 tools/compare_bench.py OLD.json NEW.json

Prints per-case throughput ratios (new/old; > 1 is faster) for every case
id present in both records, and flags cases that appear in only one — the
perf-trajectory diff between two PRs' BENCH_*.json artifacts. Records made
with different `config` blocks (smoke vs full) or on different machines
are labelled as such, since their ratios compare apples to oranges.
"""

import json
import sys

# Every record version this tool can diff. v2 adds the per-case "obs"
# block and v3 adds machine.simd plus batch_* obs keys; the throughput
# comparison ignores both, so any cross-version diff works.
KNOWN_SCHEMAS = ("bbb-bench-v1", "bbb-bench-v2", "bbb-bench-v3", "bbb-bench-v4")


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        old = json.load(f)
    with open(argv[2]) as f:
        new = json.load(f)
    for rec, path in ((old, argv[1]), (new, argv[2])):
        if rec.get("schema") not in KNOWN_SCHEMAS:
            print(f"compare_bench: {path} is not a bbb-bench record "
                  f"(known: {', '.join(KNOWN_SCHEMAS)})", file=sys.stderr)
            return 2
    if old.get("config") != new.get("config"):
        print("WARNING: configs differ (smoke vs full?) — ratios are not "
              "comparable")
    if old.get("machine") != new.get("machine"):
        print("WARNING: machines differ — ratios include hardware change")
    print(f"old: {old.get('label') or '?'} @ {(old.get('commit') or '?')[:12]}")
    print(f"new: {new.get('label') or '?'} @ {(new.get('commit') or '?')[:12]}")
    print(f"{'case':40s} {'old/s':>14s} {'new/s':>14s} {'ratio':>8s}")
    old_cases = {c["id"]: c for c in old["cases"]}
    new_cases = {c["id"]: c for c in new["cases"]}
    for cid, nc in new_cases.items():
        oc = old_cases.get(cid)
        if oc is None:
            print(f"{cid:40s} {'—':>14s} {nc['per_second']:14.0f} {'new':>8s}")
            continue
        ratio = nc["per_second"] / oc["per_second"] if oc["per_second"] else 0.0
        print(f"{cid:40s} {oc['per_second']:14.0f} {nc['per_second']:14.0f} "
              f"{ratio:7.2f}x")
    for cid in old_cases:
        if cid not in new_cases:
            print(f"{cid:40s} dropped")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
