#!/usr/bin/env python3
"""Validate a bbb --obs-out JSON-lines trace against tools/obs_schema.json.

Stdlib only, like tools/validate_bench.py — whose structural checker this
imports, so the two validators cannot drift apart. Each line must parse as
JSON, satisfy the common record envelope (schema/event/tool/seq), and
satisfy the per-event payload schema for its `event`. On top of the
per-line checks, `seq` must be strictly increasing across the file — the
one constraint a per-record schema cannot express, and the one that
catches interleaved or truncated traces.

Usage: python3 tools/validate_obs.py TRACE.jsonl [SCHEMA.json]
Exit 0 = valid; 1 = invalid (every violation printed); 2 = usage/IO error.
"""

import collections
import json
import os
import sys

from validate_bench import check


def validate_lines(lines, schema):
    """Validate an iterable of raw trace lines; returns (errors, counts).

    `errors` is a list of human-readable violations ("line N: ..."), empty
    when the trace is valid; `counts` maps event name -> occurrences.
    """
    errors = []
    counts = collections.Counter()
    last_seq = None
    for lineno, raw in enumerate(lines, start=1):
        if not raw.strip():
            errors.append(f"line {lineno}: blank line (not a JSON record)")
            continue
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as e:
            errors.append(f"line {lineno}: not JSON ({e})")
            continue
        line_errors = []
        check(record, schema["record"], f"line {lineno}", line_errors)
        event = record.get("event")
        if not line_errors and event in schema["events"]:
            check(record, schema["events"][event], f"line {lineno}", line_errors)
        errors.extend(line_errors)
        if line_errors:
            continue
        counts[event] += 1
        seq = record["seq"]
        if last_seq is not None and seq <= last_seq:
            errors.append(f"line {lineno}: seq {seq} not greater than "
                          f"previous seq {last_seq}")
        last_seq = seq
    if not counts and not errors:
        errors.append("trace is empty (no records)")
    return errors, counts


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    trace_path = argv[1]
    schema_path = argv[2] if len(argv) == 3 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "obs_schema.json")
    try:
        with open(trace_path) as f:
            lines = f.readlines()
        with open(schema_path) as f:
            schema = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_obs: {e}", file=sys.stderr)
        return 2
    errors, counts = validate_lines(lines, schema)
    if errors:
        for e in errors:
            print(f"INVALID {e}")
        return 1
    breakdown = ", ".join(f"{n} {ev}" for ev, n in sorted(counts.items()))
    print(f"OK {trace_path}: {sum(counts.values())} records ({breakdown})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
