#!/usr/bin/env python3
"""Repo-contract linter: the invariants generic tools cannot check.

Stdlib only, like validate_bench.py / validate_obs.py. Each rule encodes a
contract a past PR established and the tree now relies on:

  obs-boundary        src/bbb/core/ never includes bbb/obs/ — the PR 7
                      harvest boundary (core keeps passive plain counters;
                      drivers fold them into the registry post-hoc, so
                      --obs=off runs the byte-identical hot loop).
  lemire-only         Engine draws in src/bbb/core/ go through
                      rng::uniform_below / rng::lemire_map (or the
                      ProbeLookahead built on them) — the PR 5 lookahead
                      prefetches the bin a buffered word WILL map to, which
                      is only sound if exactly one word->bin mapping exists.
                      Raw `gen()` draws and std::<random> mappers are
                      banned outside core/probe.hpp.
  golden-pin-coverage Every protocol family registered in
                      core/protocols/registry.cpp is named in at least one
                      GoldenPins test suite — a family without a
                      bit-for-bit pin can drift silently. Prefix families
                      dispatched on SpecPrefix fields (shards[t]:) count
                      as families and need pins too.
  no-wild-randomness  std::rand / srand / time( / std::random_device appear
                      nowhere outside src/bbb/rng/ — every random bit flows
                      from the seeded, pinned engines (SeedSequence), or
                      replicate reproducibility is fiction.
  header-hygiene      Every .hpp opens with #pragma once (first
                      non-comment line) and headers never say
                      `using namespace`.

Suppression: append `// bbb-lint: allow(rule-id)` to the offending line.
Use sparingly and say why on the same line or the one above.

Usage: python3 tools/bbb_lint.py [ROOT]
       python3 tools/bbb_lint.py --list-rules
Exit 0 = clean; 1 = violations (each printed as path:line: [rule] msg);
2 = usage/IO error.
"""

import os
import re
import sys

CPP_DIRS = ("src", "tests", "bench", "tools", "examples")
CPP_EXTS = (".cpp", ".hpp")

ALLOW_RE = re.compile(r"//\s*bbb-lint:\s*allow\(([a-z0-9-]+)\)")

# lemire-only: raw word draws and std::<random> samplers. `gen()` is the
# repo-wide spelling for "draw one raw 64-bit word" (see rng/engine.hpp's
# Engine64 concept); the std types would each introduce a second
# word->value mapping beside rng::lemire_map.
RAW_DRAW_RE = re.compile(r"\bgen\(\)")
STD_RANDOM_RE = re.compile(
    r"std::(uniform_int_distribution|uniform_real_distribution|mt19937(?:_64)?|"
    r"default_random_engine|minstd_rand0?|bernoulli_distribution|discrete_distribution)")

# no-wild-randomness: `time(` must not match identifiers like
# coupon_collector_time( — hence the no-word-char lookbehind.
WILD_RES = (
    ("std::rand", re.compile(r"std::rand\b")),
    ("srand(", re.compile(r"(?<![A-Za-z0-9_])srand\s*\(")),
    ("time(", re.compile(r"(?<![A-Za-z0-9_:])time\s*\(")),
    ("std::random_device", re.compile(r"(?:std::)?random_device\b")),
)

OBS_INCLUDE_RE = re.compile(r'#\s*include\s*[<"]bbb/obs/')
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
REGISTRY_FAMILY_RE = re.compile(r'\bs\.name\s*==\s*"([a-z0-9-]+)"')
# Prefix-modifier families are dispatched on SpecPrefix fields rather than
# s.name (e.g. `prefix.shards != 0` builds the sharded engine). They need
# pins too — a pin text covers one when it names "<family>[".
PREFIX_FAMILY_RE = re.compile(r"\bprefix\.(shards)\b")


def iter_cpp_files(root):
    for top in CPP_DIRS:
        for dirpath, _dirnames, filenames in os.walk(os.path.join(root, top)):
            for name in sorted(filenames):
                if name.endswith(CPP_EXTS):
                    yield os.path.join(dirpath, name)


def read_lines(path):
    with open(path, encoding="utf-8") as f:
        return f.read().splitlines()


def rel(root, path):
    return os.path.relpath(path, root)


def suppressed(line, rule):
    m = ALLOW_RE.search(line)
    return m is not None and m.group(1) == rule


STRING_OR_COMMENT_RE = re.compile(
    r'"(?:\\.|[^"\\])*"'     # string literal (keeps the quotes)
    r"|'(?:\\.|[^'\\])*'"    # char literal
    r"|//.*$"                # line comment to EOL
    r"|/\*.*?\*/")           # block comment closed on the same line


def code_lines(lines):
    """Yield each line with strings and comments blanked out.

    Token rules (time(, gen(), random_device...) must not fire on prose in
    comments — "allocation time (Theorem 3.1)" is not a time() call. The
    original line still carries any `// bbb-lint: allow(...)` marker, so
    suppression checks keep using the raw line.
    """
    in_block = False
    for line in lines:
        if in_block:
            end = line.find("*/")
            if end < 0:
                yield ""
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        line = STRING_OR_COMMENT_RE.sub('""', line)
        start = line.find("/*")
        if start >= 0:
            line = line[:start]
            in_block = True
        yield line


def check_obs_boundary(root):
    """core/ must not include bbb/obs/ (PR 7 harvest boundary)."""
    violations = []
    core = os.path.join(root, "src", "bbb", "core")
    for path in iter_cpp_files(root):
        if not path.startswith(core + os.sep):
            continue
        for i, line in enumerate(read_lines(path), 1):
            if OBS_INCLUDE_RE.search(line) and not suppressed(line, "obs-boundary"):
                violations.append((rel(root, path), i, "obs-boundary",
                                   "core/ includes bbb/obs/ — the hot core stays "
                                   "obs-free; harvest counters post-hoc instead "
                                   "(see obs/harvest.hpp)"))
    return violations


def check_lemire_only(root):
    """Raw engine draws / std samplers banned in core/ outside probe.hpp."""
    violations = []
    core = os.path.join(root, "src", "bbb", "core")
    exempt = os.path.join(core, "probe.hpp")  # the sanctioned raw-word consumer
    for path in iter_cpp_files(root):
        if not path.startswith(core + os.sep):
            continue
        raw = read_lines(path)
        for i, (line, code) in enumerate(zip(raw, code_lines(raw)), 1):
            if STD_RANDOM_RE.search(code) and not suppressed(line, "lemire-only"):
                violations.append((rel(root, path), i, "lemire-only",
                                   "std::<random> sampler in core/ — draw through "
                                   "rng::uniform_below / rng::lemire_map so the "
                                   "lookahead prefetch mapping stays unique"))
            elif path != exempt and RAW_DRAW_RE.search(code) \
                    and not suppressed(line, "lemire-only"):
                violations.append((rel(root, path), i, "lemire-only",
                                   "raw engine draw `gen()` in core/ — only "
                                   "probe.hpp touches raw words; route bounded "
                                   "draws through rng::uniform_below"))
    return violations


def registry_families(root):
    path = os.path.join(root, "src", "bbb", "core", "protocols", "registry.cpp")
    families = []
    for line in read_lines(path):
        for name in REGISTRY_FAMILY_RE.findall(line):
            if name not in families:
                families.append(name)
        for name in PREFIX_FAMILY_RE.findall(line):
            # Search pins for "shards[" — matches any "shards[t]:" spec.
            if name + "[" not in families:
                families.append(name + "[")
    return families


def check_golden_pin_coverage(root):
    """Every registry family appears in a GoldenPins test suite."""
    registry = os.path.join(root, "src", "bbb", "core", "protocols", "registry.cpp")
    if not os.path.exists(registry):
        return [("src/bbb/core/protocols/registry.cpp", 1, "golden-pin-coverage",
                 "registry.cpp not found — cannot enumerate protocol families")]
    pin_texts = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "tests")):
        for name in sorted(filenames):
            if name.endswith("_test.cpp"):
                path = os.path.join(dirpath, name)
                text = "\n".join(read_lines(path))
                if "GoldenPins" in text:
                    pin_texts.append(text)
    violations = []
    for family in registry_families(root):
        if not any(family in text for text in pin_texts):
            violations.append(("src/bbb/core/protocols/registry.cpp", 1,
                               "golden-pin-coverage",
                               f"protocol family '{family}' has no GoldenPins "
                               "test — add a bit-for-bit pin (see "
                               "tests/protocols/golden_pins_test.cpp)"))
    return violations


def check_no_wild_randomness(root):
    """Unseeded/system randomness banned outside src/bbb/rng/."""
    violations = []
    rng_dir = os.path.join(root, "src", "bbb", "rng")
    for path in iter_cpp_files(root):
        if path.startswith(rng_dir + os.sep):
            continue
        raw = read_lines(path)
        for i, (line, code) in enumerate(zip(raw, code_lines(raw)), 1):
            for label, pattern in WILD_RES:
                if pattern.search(code) and not suppressed(line, "no-wild-randomness"):
                    violations.append((rel(root, path), i, "no-wild-randomness",
                                       f"{label} outside rng/ — all randomness "
                                       "flows from seeded engines "
                                       "(rng::SeedSequence) so runs replay"))
    return violations


def check_header_hygiene(root):
    """.hpp files open with #pragma once and never `using namespace`."""
    violations = []
    for path in iter_cpp_files(root):
        if not path.endswith(".hpp"):
            continue
        lines = read_lines(path)
        in_block_comment = False
        guard_seen = False
        for i, line in enumerate(lines, 1):
            stripped = line.strip()
            if in_block_comment:
                if "*/" in stripped:
                    in_block_comment = False
                continue
            if not stripped or stripped.startswith("//"):
                continue
            if stripped.startswith("/*"):
                in_block_comment = "*/" not in stripped
                continue
            guard_seen = stripped == "#pragma once"
            if not guard_seen and not suppressed(line, "header-hygiene"):
                violations.append((rel(root, path), i, "header-hygiene",
                                   "first non-comment line must be #pragma once"))
            break
        for i, line in enumerate(lines, 1):
            if USING_NAMESPACE_RE.search(line) \
                    and not suppressed(line, "header-hygiene"):
                violations.append((rel(root, path), i, "header-hygiene",
                                   "`using namespace` in a header leaks into "
                                   "every includer"))
    return violations


RULES = (
    ("obs-boundary", check_obs_boundary),
    ("lemire-only", check_lemire_only),
    ("golden-pin-coverage", check_golden_pin_coverage),
    ("no-wild-randomness", check_no_wild_randomness),
    ("header-hygiene", check_header_hygiene),
)


def run_all(root):
    violations = []
    for _name, check in RULES:
        violations.extend(check(root))
    return violations


def main(argv):
    if "--list-rules" in argv:
        for name, check in RULES:
            print(f"{name}: {check.__doc__}")
        return 0
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = os.path.abspath(argv[1]) if len(argv) == 2 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"bbb_lint: '{root}' has no src/ — not a repo root", file=sys.stderr)
        return 2
    violations = run_all(root)
    for path, line, rule, msg in sorted(violations):
        print(f"{path}:{line}: [{rule}] {msg}")
    if violations:
        print(f"bbb_lint: {len(violations)} violation(s)")
        return 1
    print(f"bbb_lint: clean ({len(RULES)} rules over "
          f"{sum(1 for _ in iter_cpp_files(root))} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
