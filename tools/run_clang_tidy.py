#!/usr/bin/env python3
"""clang-tidy driver for the bbb tree (profile: .clang-tidy at repo root).

Stdlib only. Reads compile_commands.json (exported by every CMake
configure — CMAKE_EXPORT_COMPILE_COMMANDS is ON in the top-level lists
file), selects the first-party TUs, and runs clang-tidy over them in
parallel, applying the per-file suppression ledger in
tools/clang_tidy_suppressions.json:

    { "src/bbb/foo/bar.cpp": [
        { "check": "bugprone-xyz", "reason": "why this file is exempt" } ] }

Ledger entries become `--checks=-<check>` for that file only — a narrow,
reviewable alternative to NOLINT scatter or profile-wide disables.

The container this repo usually builds in has no clang-tidy; without the
binary the script prints SKIPPED and exits 0 so local runs and ctest stay
green. CI passes --require (after installing clang-tidy), which turns a
missing binary into a hard failure instead of a silent skip.

Usage: python3 tools/run_clang_tidy.py [--build-dir DIR] [--require]
                                       [--include-tests] [PATH_SUBSTR ...]
Positional args filter TUs by substring (e.g. `core/` or `probe`).
Exit 0 = clean or skipped; 1 = findings; 2 = setup error.
"""

import json
import os
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LEDGER = os.path.join(REPO, "tools", "clang_tidy_suppressions.json")
FIRST_PARTY = ("src/", "bench/", "examples/", "tools/")
CANDIDATE_BINARIES = ("clang-tidy", "clang-tidy-20", "clang-tidy-19",
                      "clang-tidy-18", "clang-tidy-17", "clang-tidy-16")
DEFAULT_BUILD_DIRS = ("build", "build-debug", "build-tsan", "build-sanitize")


def find_binary():
    override = os.environ.get("CLANG_TIDY")
    if override:
        return override if shutil.which(override) else None
    for name in CANDIDATE_BINARIES:
        if shutil.which(name):
            return name
    return None


def find_compile_db(build_dir):
    if build_dir:
        candidates = [build_dir]
    else:
        candidates = [os.path.join(REPO, d) for d in DEFAULT_BUILD_DIRS]
    for d in candidates:
        path = os.path.join(d, "compile_commands.json")
        if os.path.exists(path):
            return d
    return None


def load_ledger():
    if not os.path.exists(LEDGER):
        return {}
    with open(LEDGER, encoding="utf-8") as f:
        ledger = json.load(f)
    for rel, entries in ledger.items():
        for entry in entries:
            if "check" not in entry or "reason" not in entry:
                raise ValueError(f"ledger entry for {rel} needs 'check' and "
                                 "'reason' keys")
    return ledger


def select_tus(build_dir, include_tests, filters):
    with open(os.path.join(build_dir, "compile_commands.json"),
              encoding="utf-8") as f:
        db = json.load(f)
    prefixes = FIRST_PARTY + (("tests/",) if include_tests else ())
    files = []
    for entry in db:
        path = os.path.normpath(entry["file"])
        rel = os.path.relpath(path, REPO)
        if rel.startswith("..") or "_deps" in rel:
            continue
        if not rel.startswith(prefixes):
            continue
        if filters and not any(s in rel for s in filters):
            continue
        if rel not in files:
            files.append(rel)
    return sorted(files)


def tidy_one(binary, build_dir, rel, ledger):
    cmd = [binary, "-p", build_dir, "--quiet"]
    disabled = [e["check"] for e in ledger.get(rel, [])]
    if disabled:
        cmd.append("--checks=" + ",".join("-" + c for c in disabled))
    cmd.append(os.path.join(REPO, rel))
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # clang-tidy exits nonzero iff WarningsAsErrors matched (our profile
    # promotes everything), so returncode is the per-file verdict.
    return rel, proc.returncode, proc.stdout.strip()


def main(argv):
    build_dir = None
    require = False
    include_tests = False
    filters = []
    args = iter(argv[1:])
    for arg in args:
        if arg == "--build-dir":
            build_dir = next(args, None)
            if build_dir is None:
                print("--build-dir needs a value", file=sys.stderr)
                return 2
        elif arg == "--require":
            require = True
        elif arg == "--include-tests":
            include_tests = True
        elif arg.startswith("-"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            filters.append(arg)

    binary = find_binary()
    if binary is None:
        if require:
            print("run_clang_tidy: no clang-tidy binary found and --require "
                  "was given", file=sys.stderr)
            return 2
        print("run_clang_tidy: SKIPPED (no clang-tidy binary on PATH; "
              "install one or set CLANG_TIDY, or run in CI)")
        return 0

    build_dir = find_compile_db(build_dir)
    if build_dir is None:
        print("run_clang_tidy: no compile_commands.json found — configure "
              "a build first (cmake -B build -S .)", file=sys.stderr)
        return 2

    try:
        ledger = load_ledger()
    except (ValueError, json.JSONDecodeError) as err:
        print(f"run_clang_tidy: bad suppression ledger: {err}", file=sys.stderr)
        return 2

    files = select_tus(build_dir, include_tests, filters)
    if not files:
        print("run_clang_tidy: no matching TUs", file=sys.stderr)
        return 2

    failures = 0
    workers = max(1, os.cpu_count() or 1)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        jobs = [pool.submit(tidy_one, binary, build_dir, rel, ledger)
                for rel in files]
        for job in jobs:
            rel, code, output = job.result()
            if code != 0:
                failures += 1
                print(f"== {rel}")
                print(output)
    suppressed = sum(len(v) for v in ledger.values())
    print(f"run_clang_tidy: {len(files)} TUs, {failures} with findings"
          + (f", {suppressed} ledger suppression(s)" if suppressed else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
