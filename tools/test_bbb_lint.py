#!/usr/bin/env python3
"""Fixture tests for bbb_lint.py: every rule must fire on a seeded
violation and stay silent on the matching clean case.

Each test builds a miniature repo in a temp dir, seeds exactly one
contract breach, and asserts the rule reports it (and nothing else). The
final test runs the full linter over the real tree — the same check ctest
and CI run — so the fixtures and the production tree are verified by one
file.

Stdlib only (unittest), like the validate_* test harnesses.
Run: python3 tools/test_bbb_lint.py
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bbb_lint  # noqa: E402  (path bootstrap above)


def write(root, rel, text):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)


def rules_fired(violations):
    return sorted({rule for _path, _line, rule, _msg in violations})


class FixtureTree(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name
        # Minimal clean skeleton every test starts from.
        write(self.root, "src/bbb/core/protocols/registry.cpp",
              'if (s.name == "one-choice") return make();\n')
        write(self.root, "tests/protocols/golden_pins_test.cpp",
              'TEST(RegistryGoldenPins, OneChoice) { run("one-choice"); }\n')

    def tearDown(self):
        self._tmp.cleanup()


class ObsBoundary(FixtureTree):
    def test_core_including_obs_fires(self):
        write(self.root, "src/bbb/core/alloc.cpp",
              '#include "bbb/obs/metrics.hpp"\n')
        violations = bbb_lint.check_obs_boundary(self.root)
        self.assertEqual(rules_fired(violations), ["obs-boundary"])
        self.assertIn("src/bbb/core/alloc.cpp", violations[0][0])

    def test_obs_include_outside_core_is_clean(self):
        write(self.root, "src/bbb/sim/runner.cpp",
              '#include "bbb/obs/metrics.hpp"\n')
        self.assertEqual(bbb_lint.check_obs_boundary(self.root), [])

    def test_suppression_comment_silences(self):
        write(self.root, "src/bbb/core/alloc.cpp",
              '#include "bbb/obs/metrics.hpp"  // bbb-lint: allow(obs-boundary)\n')
        self.assertEqual(bbb_lint.check_obs_boundary(self.root), [])


class LemireOnly(FixtureTree):
    def test_raw_gen_draw_in_core_fires(self):
        write(self.root, "src/bbb/core/alloc.cpp",
              "const auto word = gen();\n")
        violations = bbb_lint.check_lemire_only(self.root)
        self.assertEqual(rules_fired(violations), ["lemire-only"])

    def test_std_sampler_in_core_fires(self):
        write(self.root, "src/bbb/core/alloc.cpp",
              "std::uniform_int_distribution<std::uint32_t> dist(0, n - 1);\n")
        violations = bbb_lint.check_lemire_only(self.root)
        self.assertEqual(rules_fired(violations), ["lemire-only"])

    def test_probe_hpp_is_exempt_for_raw_draws(self):
        write(self.root, "src/bbb/core/probe.hpp",
              "#pragma once\nbuffer_[i] = gen();\n")
        self.assertEqual(bbb_lint.check_lemire_only(self.root), [])

    def test_gen_in_comment_is_clean(self):
        write(self.root, "src/bbb/core/alloc.cpp",
              "// raw gen() draws are banned here\n"
              "const auto bin = rng::uniform_below(gen, n);\n")
        self.assertEqual(bbb_lint.check_lemire_only(self.root), [])


class GoldenPinCoverage(FixtureTree):
    def test_unpinned_family_fires(self):
        write(self.root, "src/bbb/core/protocols/registry.cpp",
              'if (s.name == "one-choice") return a();\n'
              'if (s.name == "greedy") return b();\n')
        violations = bbb_lint.check_golden_pin_coverage(self.root)
        self.assertEqual(rules_fired(violations), ["golden-pin-coverage"])
        self.assertIn("'greedy'", violations[0][3])

    def test_pins_outside_goldenpins_suites_do_not_count(self):
        write(self.root, "tests/protocols/other_test.cpp",
              'TEST(Invariants, OneChoice) { run("one-choice"); }\n')
        write(self.root, "tests/protocols/golden_pins_test.cpp", "// empty\n")
        violations = bbb_lint.check_golden_pin_coverage(self.root)
        self.assertEqual(rules_fired(violations), ["golden-pin-coverage"])

    def test_all_families_pinned_is_clean(self):
        self.assertEqual(bbb_lint.check_golden_pin_coverage(self.root), [])

    def test_unpinned_prefix_family_fires(self):
        write(self.root, "src/bbb/core/protocols/registry.cpp",
              'if (s.name == "one-choice") return a();\n'
              "if (prefix.shards != 0) return sharded();\n")
        violations = bbb_lint.check_golden_pin_coverage(self.root)
        self.assertEqual(rules_fired(violations), ["golden-pin-coverage"])
        self.assertIn("'shards['", violations[0][3])

    def test_pinned_prefix_family_is_clean(self):
        write(self.root, "src/bbb/core/protocols/registry.cpp",
              'if (s.name == "one-choice") return a();\n'
              "if (prefix.shards != 0) return sharded();\n")
        write(self.root, "tests/protocols/golden_pins_test.cpp",
              'TEST(RegistryGoldenPins, OneChoice) { run("one-choice"); }\n'
              'TEST(RegistryGoldenPins, ShardsTwo) { run("shards[2]:one-choice"); }\n')
        self.assertEqual(bbb_lint.check_golden_pin_coverage(self.root), [])


class NoWildRandomness(FixtureTree):
    def test_each_banned_token_fires(self):
        write(self.root, "src/bbb/sim/bad.cpp",
              "std::srand(static_cast<unsigned>(time(nullptr)));\n"
              "const int r = std::rand();\n"
              "std::random_device rd;\n")
        violations = bbb_lint.check_no_wild_randomness(self.root)
        self.assertEqual(rules_fired(violations), ["no-wild-randomness"])
        # srand + time on line 1, rand on line 2, random_device on line 3.
        self.assertEqual(len(violations), 4)

    def test_rng_dir_is_exempt(self):
        write(self.root, "src/bbb/rng/seed.cpp", "std::random_device rd;\n")
        self.assertEqual(bbb_lint.check_no_wild_randomness(self.root), [])

    def test_identifier_containing_time_is_clean(self):
        write(self.root, "src/bbb/sim/good.cpp",
              "const double t = coupon_collector_time(n);\n"
              "// wall time (ns) measured via steady_clock\n"
              'log("allocation time (Theorem 3.1)");\n')
        self.assertEqual(bbb_lint.check_no_wild_randomness(self.root), [])


class HeaderHygiene(FixtureTree):
    def test_missing_pragma_once_fires(self):
        write(self.root, "src/bbb/core/alloc.hpp",
              "/// Doc comment.\n#include <cstdint>\n")
        violations = bbb_lint.check_header_hygiene(self.root)
        self.assertEqual(rules_fired(violations), ["header-hygiene"])

    def test_using_namespace_in_header_fires(self):
        write(self.root, "src/bbb/core/alloc.hpp",
              "#pragma once\nusing namespace std;\n")
        violations = bbb_lint.check_header_hygiene(self.root)
        self.assertEqual(rules_fired(violations), ["header-hygiene"])

    def test_doc_comment_then_pragma_is_clean(self):
        write(self.root, "src/bbb/core/alloc.hpp",
              "/// Doc comment.\n/* block\n   comment */\n#pragma once\n"
              "using std::uint32_t;  // using-declaration is fine\n")
        self.assertEqual(bbb_lint.check_header_hygiene(self.root), [])

    def test_cpp_files_are_not_checked(self):
        write(self.root, "src/bbb/core/alloc.cpp", "using namespace bbb;\n")
        self.assertEqual(bbb_lint.check_header_hygiene(self.root), [])


class MainEntry(FixtureTree):
    def test_clean_fixture_exits_zero(self):
        self.assertEqual(bbb_lint.main(["bbb_lint.py", self.root]), 0)

    def test_violating_fixture_exits_one(self):
        write(self.root, "src/bbb/core/alloc.cpp", "const auto w = gen();\n")
        self.assertEqual(bbb_lint.main(["bbb_lint.py", self.root]), 1)

    def test_non_repo_root_exits_two(self):
        with tempfile.TemporaryDirectory() as empty:
            self.assertEqual(bbb_lint.main(["bbb_lint.py", empty]), 2)


class RealTree(unittest.TestCase):
    def test_production_tree_is_clean(self):
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        violations = bbb_lint.run_all(repo)
        self.assertEqual(violations, [],
                         "\n".join(f"{p}:{l}: [{r}] {m}"
                                   for p, l, r, m in violations))


if __name__ == "__main__":
    unittest.main()
