/// bbb_law — the law-tier driver: exact occupancy-law sampling and fluid
/// tail curves at bin counts no simulation can touch (n = 2^40 and beyond,
/// answers in seconds).
///
///   $ bbb_law --protocol=one-choice --log2n=40 --log2m=40 --reps=20
///   $ bbb_law --protocol='greedy[2]' --log2n=50 --log2m=50 --tail=8
///   $ bbb_law --log2n=20 --log2m=20 --reps=64 --cross=64   # GOF vs exact core
///
/// --cross=R runs R replicates of the exact per-ball core at the same
/// (m, n) (independent seeds) and prints the goodness-of-fit comparison —
/// chi-square homogeneity and KS on the aggregated level counts, KS on the
/// per-replicate max loads — the same checks tests/law/ pre-registers.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bbb/io/argparse.hpp"
#include "bbb/io/csv.hpp"
#include "bbb/io/table.hpp"
#include "bbb/law/engine.hpp"
#include "bbb/model/poissonized.hpp"
#include "bbb/obs/cli.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/stats/gof.hpp"

namespace {

/// Pad the shorter of two level-count rows with zero cells so they align.
void align_rows(std::vector<std::uint64_t>& a, std::vector<std::uint64_t>& b) {
  const std::size_t top = a.size() > b.size() ? a.size() : b.size();
  a.resize(top, 0);
  b.resize(top, 0);
}

}  // namespace

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bbb_law",
                          "sample the occupancy law at astronomical n");
  args.add_flag("protocol", std::string("one-choice"),
                "one-choice | greedy[d] | mixed[d,b] (beta = b/100)");
  args.add_flag("m", std::uint64_t{0}, "balls (0 = use --log2m)");
  args.add_flag("n", std::uint64_t{0}, "bins (0 = use --log2n)");
  args.add_flag("log2m", std::uint64_t{20}, "balls = 2^log2m when --m=0");
  args.add_flag("log2n", std::uint64_t{20}, "bins = 2^log2n when --n=0");
  args.add_flag("reps", std::uint64_t{20}, "replicates (sampled specs)");
  args.add_flag("seed", std::uint64_t{42}, "master seed");
  args.add_flag("format", std::string("ascii"), "ascii|markdown|csv");
  args.add_flag("tail", std::uint64_t{0},
                "print the first k levels: fluid s_k vs sampled fraction");
  args.add_flag("cross", std::uint64_t{0},
                "cross-validate against this many exact-core replicates "
                "(one-choice only; n must be simulable)");
  args.add_flag("csv", std::string(""), "dump per-replicate rows to this file");
  bbb::obs::add_obs_flags(args);
  try {
    if (!args.parse(argc, argv)) return 0;

    bbb::law::LawConfig cfg;
    cfg.protocol_spec = args.get_string("protocol");
    cfg.m = args.get_u64("m") != 0 ? args.get_u64("m")
                                   : std::uint64_t{1} << args.get_u64("log2m");
    cfg.n = args.get_u64("n") != 0 ? args.get_u64("n")
                                   : std::uint64_t{1} << args.get_u64("log2n");
    cfg.replicates = static_cast<std::uint32_t>(args.get_u64("reps"));
    cfg.seed = args.get_u64("seed");
    cfg.obs = bbb::obs::parse_obs_flags(args);
    const auto format = bbb::io::parse_format(args.get_string("format"));

    const bbb::law::LawSummary s = bbb::law::run_law_experiment(cfg);

    bbb::io::Table table({"metric", "mean", "stddev", "min", "max", "ci95"});
    table.set_title(s.protocol_name + "  " + cfg.describe());
    const auto add = [&table](const std::string& name,
                              const bbb::stats::RunningStats& st, int prec) {
      table.begin_row();
      table.add_cell(name);
      table.add_num(st.mean(), prec);
      table.add_num(st.stddev(), prec);
      table.add_num(st.min(), prec);
      table.add_num(st.max(), prec);
      table.add_num(st.ci95_halfwidth(), prec);
    };
    add("max load", s.max_load, 2);
    add("min load", s.min_load, 2);
    add("gap", s.gap, 2);
    if (s.sampled) {
      add("psi", s.psi, 1);
      add("ln(phi)", s.log_phi, 3);
    }
    std::fputs(table.render(format).c_str(), stdout);
    std::printf("fluid estimate: max load %u, min load %u (t = m/n = %.6g)\n",
                s.fluid_max_load, s.fluid_min_load,
                static_cast<double>(cfg.m) / static_cast<double>(cfg.n));
    // Metric summary on stderr so piped stdout (csv/markdown) stays clean.
    bbb::obs::print_summary(s.obs, stderr);

    const std::uint64_t tail = args.get_u64("tail");
    if (tail > 0) {
      bbb::io::Table curve(s.sampled ? std::vector<std::string>{"k", "fluid s_k",
                                                                "sampled s_k"}
                                     : std::vector<std::string>{"k", "fluid s_k"});
      curve.set_title("tail curve s_k = fraction of bins with load >= k");
      std::uint64_t bins_seen = 0;
      std::vector<double> sampled_tail;  // sampled fraction >= k, k from high to low
      if (s.sampled) {
        sampled_tail.resize(s.level_counts.size() + 1, 0.0);
        for (std::size_t k = s.level_counts.size(); k-- > 0;) {
          bins_seen += s.level_counts[k];
          sampled_tail[k] = static_cast<double>(bins_seen) /
                            (static_cast<double>(cfg.n) * s.max_load.count());
        }
      }
      for (std::uint64_t k = 1; k <= tail; ++k) {
        curve.begin_row();
        curve.add_num(static_cast<double>(k), 0);
        curve.add_num(k <= s.fluid_tails.size() ? s.fluid_tails[k - 1] : 0.0, 9);
        if (s.sampled) {
          curve.add_num(k < sampled_tail.size() ? sampled_tail[k] : 0.0, 9);
        }
      }
      std::fputs(curve.render(format).c_str(), stdout);
    }

    const std::uint64_t cross = args.get_u64("cross");
    if (cross > 0) {
      if (!s.sampled) {
        throw std::invalid_argument(
            "--cross compares sampled laws; fluid specs have nothing to sample");
      }
      if (cfg.n > (std::uint64_t{1} << 28)) {
        throw std::invalid_argument(
            "--cross simulates every ball; keep n <= 2^28 (the law side alone "
            "scales far beyond)");
      }
      // Exact side: independent master seed (seed + 1) so the comparison is
      // between independent draws, not correlated streams.
      std::vector<std::uint64_t> exact_levels;
      std::vector<double> exact_max;
      for (std::uint64_t r = 0; r < cross; ++r) {
        bbb::rng::Engine gen =
            bbb::rng::SeedSequence(cfg.seed + 1).engine(static_cast<std::uint32_t>(r));
        const auto loads = bbb::model::exact_loads(
            cfg.m, static_cast<std::uint32_t>(cfg.n), gen);
        const auto levels = bbb::model::level_counts_of(loads);
        if (exact_levels.size() < levels.size()) exact_levels.resize(levels.size(), 0);
        for (std::size_t j = 0; j < levels.size(); ++j) exact_levels[j] += levels[j];
        exact_max.push_back(static_cast<double>(levels.size()) - 1.0);
      }
      std::vector<std::uint64_t> law_levels = s.level_counts;
      align_rows(law_levels, exact_levels);

      const auto chi2 =
          bbb::stats::chi_square_homogeneity(law_levels, exact_levels);
      const auto ks = bbb::stats::ks_counts(law_levels, exact_levels);
      std::vector<double> law_max;
      for (const auto& rec : s.records) law_max.push_back(rec.max_load);
      const double ks_max = law_max.empty()
                                ? 0.0
                                : bbb::stats::ks_statistic(law_max, exact_max);

      std::printf("\ncross-validation vs exact core (%llu replicates, seed %llu):\n",
                  static_cast<unsigned long long>(cross),
                  static_cast<unsigned long long>(cfg.seed + 1));
      std::printf("  level counts  chi2 = %.4f (df %.0f, %zu pooled)  p = %.4f\n",
                  chi2.statistic, chi2.df, chi2.pooled_cells, chi2.p_value);
      std::printf("  level counts  KS D = %.6f  p = %.4f\n", ks.statistic,
                  ks.p_value);
      std::printf("  max loads     KS D = %.6f (%zu vs %zu replicates)\n", ks_max,
                  law_max.size(), exact_max.size());
    }

    const std::string csv_path = args.get_string("csv");
    if (!csv_path.empty()) {
      bbb::io::CsvWriter csv(csv_path, {"replicate", "max_load", "min_load", "gap",
                                        "psi", "log_phi"});
      for (std::size_t r = 0; r < s.records.size(); ++r) {
        const auto& rec = s.records[r];
        csv.write_row(std::vector<double>{static_cast<double>(r), rec.max_load,
                                          rec.min_load, rec.gap, rec.psi,
                                          rec.log_phi});
      }
      std::printf("wrote %zu replicate rows to %s\n", csv.rows(), csv_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbb_law: %s\n", e.what());
    return 1;
  }
  return 0;
}
