/// bbb_trace — record the load-distribution trajectory of a streaming
/// protocol: snapshots of max/min/psi/ln(phi) every m/points balls, printed
/// as a table (and optionally CSV). This is the tool behind the smoothness
/// pictures: watch adaptive stay flat while threshold digs holes.
///
///   $ bbb_trace --protocol=adaptive --m=1000000 --n=10000 --points=20
///
/// Every registry spec is accepted (--list=1 prints them); snapshots are
/// read off the incremental BinState, so even per-ball traces (--points=m)
/// of million-ball runs cost O(m), not O(m n).

#include <cstdio>
#include <string>

#include "bbb/core/protocols/registry.hpp"
#include "bbb/io/argparse.hpp"
#include "bbb/io/csv.hpp"
#include "bbb/obs/cli.hpp"
#include "bbb/obs/harvest.hpp"
#include "bbb/obs/trace_sink.hpp"
#include "bbb/sim/trace.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bbb_trace", "load-distribution trajectory of a protocol");
  args.add_flag("protocol", std::string("adaptive"),
                "registry protocol spec (see --list=1)");
  args.add_flag("m", std::uint64_t{100'000}, "balls");
  args.add_flag("n", std::uint64_t{10'000}, "bins");
  args.add_flag("points", std::uint64_t{10}, "snapshots to record");
  args.add_flag("seed", std::uint64_t{42}, "seed");
  args.add_flag("layout", std::string("wide"),
                "BinState storage: wide|compact (~1 byte/bin giant-scale tier)");
  args.add_flag("format", std::string("ascii"), "ascii|markdown|csv");
  args.add_flag("csv", std::string(""), "also dump points to this CSV file");
  args.add_flag("list", std::uint64_t{0}, "1 = print protocol spec strings and exit");
  bbb::obs::add_obs_flags(args);
  try {
    if (!args.parse(argc, argv)) return 0;

    if (args.get_u64("list") != 0) {
      std::puts("protocols:");
      for (const auto& s : bbb::core::protocol_specs()) {
        std::printf("  %s\n", s.c_str());
      }
      return 0;
    }

    const auto m = args.get_u64("m");
    const auto n = static_cast<std::uint32_t>(args.get_u64("n"));
    const auto points = args.get_u64("points");
    const auto format = bbb::io::parse_format(args.get_string("format"));
    if (points == 0) throw std::invalid_argument("--points must be positive");
    const bbb::obs::ObsConfig obs = bbb::obs::parse_obs_flags(args);

    bbb::rng::Engine gen(args.get_u64("seed"));
    // The m hint binds fixed-bound rules (threshold) to this run's total;
    // the factory also honors capacities= prefixes (heterogeneous bins).
    const auto alloc = bbb::core::make_streaming_allocator(
        args.get_string("protocol"), n, m,
        bbb::core::parse_state_layout(args.get_string("layout")));
    if (obs.sink) {
      bbb::obs::JsonLine line("run_start", "trace");
      line.begin_object("config")
          .field("protocol", alloc->name())
          .field("m", m)
          .field("n", static_cast<std::uint64_t>(n))
          .field("points", points)
          .field("seed", args.get_u64("seed"))
          .end_object();
      obs.sink->write(std::move(line));
    }
    const auto trace = bbb::sim::trace_allocation(*alloc, gen, m, m / points);
    // No runner sits between this CLI and the allocator, so harvest the
    // core's passive counters directly once the stream is complete.
    bbb::obs::Snapshot obs_snapshot;
    if (obs.counters_on()) {
      bbb::obs::MetricsRegistry registry;
      bbb::obs::fold_into(registry, bbb::obs::harvest(*alloc));
      obs_snapshot = registry.snapshot();
      if (obs.sink) {
        bbb::obs::JsonLine line("summary", "trace");
        bbb::obs::append_metrics(line, obs_snapshot);
        obs.sink->write(std::move(line));
      }
    }

    auto table = bbb::sim::trace_table(trace);
    table.set_title(alloc->name() + " trajectory, m = " + std::to_string(m) +
                    ", n = " + std::to_string(n));
    std::fputs(table.render(format).c_str(), stdout);
    // Metric summary on stderr so piped stdout (csv/markdown) stays clean.
    bbb::obs::print_summary(obs_snapshot, stderr);

    const std::string csv_path = args.get_string("csv");
    if (!csv_path.empty()) {
      bbb::io::CsvWriter csv(csv_path,
                             {"balls", "probes", "max", "min", "psi", "ln_phi"});
      for (const auto& p : trace) {
        csv.write_row(std::vector<double>{
            static_cast<double>(p.balls), static_cast<double>(p.probes),
            static_cast<double>(p.max_load), static_cast<double>(p.min_load), p.psi,
            p.log_phi});
      }
      std::printf("wrote %zu trace rows to %s\n", csv.rows(), csv_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbb_trace: %s\n", e.what());
    return 1;
  }
  return 0;
}
