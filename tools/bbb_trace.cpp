/// bbb_trace — record the load-distribution trajectory of a streaming
/// protocol: snapshots of max/min/psi/ln(phi) every m/points balls, printed
/// as a table (and optionally CSV). This is the tool behind the smoothness
/// pictures: watch adaptive stay flat while threshold digs holes.
///
///   $ bbb_trace --protocol=adaptive --m=1000000 --n=10000 --points=20
///
/// Supported protocols (the streaming subset): adaptive, adaptive[slack],
/// threshold, threshold[slack], one-choice, greedy[d], left[d].

#include <cstdio>
#include <memory>
#include <string>

#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/core/protocols/d_choice.hpp"
#include "bbb/core/protocols/left_d.hpp"
#include "bbb/core/protocols/one_choice.hpp"
#include "bbb/core/protocols/threshold.hpp"
#include "bbb/io/argparse.hpp"
#include "bbb/io/csv.hpp"
#include "bbb/sim/trace.hpp"

namespace {

// Minimal streaming-protocol dispatch: parse the subset of registry specs
// that have a streaming allocator and run the trace through it.
std::vector<bbb::sim::TracePoint> trace_spec(const std::string& spec, std::uint64_t m,
                                             std::uint32_t n, std::uint64_t stride,
                                             bbb::rng::Engine& gen) {
  const auto bracket_arg = [&spec](std::uint32_t fallback) -> std::uint32_t {
    const auto lb = spec.find('[');
    if (lb == std::string::npos) return fallback;
    return static_cast<std::uint32_t>(std::stoul(spec.substr(lb + 1)));
  };
  if (spec.rfind("adaptive", 0) == 0) {
    bbb::core::AdaptiveAllocator alloc(n, bracket_arg(1));
    return bbb::sim::trace_allocation(alloc, gen, m, stride);
  }
  if (spec.rfind("threshold", 0) == 0) {
    bbb::core::ThresholdAllocator alloc(n, m, bracket_arg(1));
    return bbb::sim::trace_allocation(alloc, gen, m, stride);
  }
  if (spec == "one-choice") {
    bbb::core::OneChoiceAllocator alloc(n);
    return bbb::sim::trace_allocation(alloc, gen, m, stride);
  }
  if (spec.rfind("greedy", 0) == 0) {
    bbb::core::DChoiceAllocator alloc(n, bracket_arg(2));
    return bbb::sim::trace_allocation(alloc, gen, m, stride);
  }
  if (spec.rfind("left", 0) == 0) {
    bbb::core::LeftDAllocator alloc(n, bracket_arg(2));
    return bbb::sim::trace_allocation(alloc, gen, m, stride);
  }
  throw std::invalid_argument("bbb_trace: no streaming allocator for '" + spec + "'");
}

}  // namespace

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bbb_trace", "load-distribution trajectory of a protocol");
  args.add_flag("protocol", std::string("adaptive"), "streaming protocol spec");
  args.add_flag("m", std::uint64_t{100'000}, "balls");
  args.add_flag("n", std::uint64_t{10'000}, "bins");
  args.add_flag("points", std::uint64_t{10}, "snapshots to record");
  args.add_flag("seed", std::uint64_t{42}, "seed");
  args.add_flag("format", std::string("ascii"), "ascii|markdown|csv");
  args.add_flag("csv", std::string(""), "also dump points to this CSV file");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto m = args.get_u64("m");
    const auto n = static_cast<std::uint32_t>(args.get_u64("n"));
    const auto points = args.get_u64("points");
    const auto format = bbb::io::parse_format(args.get_string("format"));
    if (points == 0) throw std::invalid_argument("--points must be positive");

    bbb::rng::Engine gen(args.get_u64("seed"));
    const auto trace =
        trace_spec(args.get_string("protocol"), m, n, m / points, gen);

    auto table = bbb::sim::trace_table(trace);
    table.set_title(args.get_string("protocol") + " trajectory, m = " +
                    std::to_string(m) + ", n = " + std::to_string(n));
    std::fputs(table.render(format).c_str(), stdout);

    const std::string csv_path = args.get_string("csv");
    if (!csv_path.empty()) {
      bbb::io::CsvWriter csv(csv_path,
                             {"balls", "probes", "max", "min", "psi", "ln_phi"});
      for (const auto& p : trace) {
        csv.write_row(std::vector<double>{
            static_cast<double>(p.balls), static_cast<double>(p.probes),
            static_cast<double>(p.max_load), static_cast<double>(p.min_load), p.psi,
            p.log_phi});
      }
      std::printf("wrote %zu trace rows to %s\n", csv.rows(), csv_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbb_trace: %s\n", e.what());
    return 1;
  }
  return 0;
}
