#!/usr/bin/env python3
"""Validate a bbb_bench JSON record against tools/bench_schema.json.

Stdlib only (CI runners have no jsonschema package): this implements the
subset of JSON Schema the schema file actually uses — required keys, type
checks, const/enum, numeric minimums, minItems/minLength/minProperties —
and fails loudly on anything else it finds in the schema, so the two files
cannot drift apart silently.

Usage: python3 tools/validate_bench.py RECORD.json [SCHEMA.json]
Exit 0 = valid; 1 = invalid (every violation printed); 2 = usage/IO error.
"""

import json
import os
import sys

TYPE_MAP = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}

HANDLED = {
    "$schema", "$id", "title", "description", "type", "required",
    "properties", "items", "const", "enum", "minimum", "minItems",
    "minLength", "minProperties",
}


def check(value, schema, path, errors):
    unknown = set(schema) - HANDLED
    if unknown:
        errors.append(f"{path}: validator does not implement schema keywords "
                      f"{sorted(unknown)} — extend tools/validate_bench.py")
        return
    expected = schema.get("type")
    if expected is not None:
        py = TYPE_MAP[expected]
        ok = isinstance(value, py) and not (expected in ("integer", "number")
                                            and isinstance(value, bool))
        if not ok:
            errors.append(f"{path}: expected {expected}, got "
                          f"{type(value).__name__} ({value!r})")
            return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if "minLength" in schema and isinstance(value, str) \
            and len(value) < schema["minLength"]:
        errors.append(f"{path}: length {len(value)} < {schema['minLength']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        if "minProperties" in schema and len(value) < schema["minProperties"]:
            errors.append(f"{path}: needs >= {schema['minProperties']} properties")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                check(value[key], sub, f"{path}.{key}", errors)
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: {len(value)} items < {schema['minItems']}")
        if "items" in schema:
            for i, item in enumerate(value):
                check(item, schema["items"], f"{path}[{i}]", errors)


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    record_path = argv[1]
    schema_path = argv[2] if len(argv) == 3 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "bench_schema.json")
    try:
        with open(record_path) as f:
            record = json.load(f)
        with open(schema_path) as f:
            schema = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_bench: {e}", file=sys.stderr)
        return 2
    errors = []
    check(record, schema, "$", errors)
    if errors:
        for e in errors:
            print(f"INVALID {e}")
        return 1
    ids = [c["id"] for c in record["cases"]]
    print(f"OK {record_path}: schema {record['schema']}, "
          f"{len(ids)} cases ({', '.join(ids[:4])}, ...)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
